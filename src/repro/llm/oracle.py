"""Ground-truth registry ("oracle") for simulated semantic tasks.

Synthetic corpora know the true answer to every semantic question a pipeline
can ask about their documents ("is this paper about colorectal cancer?",
"what datasets does it reference?").  Generators register those truths here,
keyed by a stable fingerprint of the document text, and the simulated LLM
client consults the oracle first — falling back to heuristic NLP
(:mod:`repro.llm.semantics`) for text it has never seen.

The oracle also lets tests and benchmarks *score* pipeline output: quality
metrics compare extracted values against the registered truth.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.llm.memo import TextMemo, register_memo

#: Memo of text -> fingerprint: every oracle lookup, quality decision, and
#: cache key re-fingerprints the document, but the fingerprint is a pure
#: function of the text.
_fingerprint_memo = register_memo(TextMemo("fingerprint_text"))


def _fingerprint_uncached(text: str) -> str:
    normalized = " ".join(text.split())
    return hashlib.sha256(normalized.encode("utf-8")).hexdigest()[:24]


def fingerprint_text(text: str) -> str:
    """Stable fingerprint of a document's text content (memoized).

    Whitespace runs are collapsed so that round-tripping text through file
    formats (fake-PDF streams, JSON) does not change the fingerprint.
    """
    return _fingerprint_memo.get_or_compute(text, _fingerprint_uncached)


@dataclass
class DocumentTruth:
    """Everything the corpus generator knows about one document.

    Attributes:
        predicates: natural-language predicate -> True/False.
        fields: field name -> ground-truth value (or list of values for
            one-to-many extractions).
        difficulty: in [0, 1]; scales the simulated models' error rates on
            this document (0 = trivially easy, 1 = maximally ambiguous).
        label: free-form label for debugging ("paper-03").
    """

    predicates: Dict[str, bool] = field(default_factory=dict)
    fields: Dict[str, Any] = field(default_factory=dict)
    difficulty: float = 0.2
    label: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "predicates": self.predicates,
            "fields": self.fields,
            "difficulty": self.difficulty,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DocumentTruth":
        return cls(
            predicates=dict(data.get("predicates", {})),
            fields=dict(data.get("fields", {})),
            difficulty=float(data.get("difficulty", 0.2)),
            label=str(data.get("label", "")),
        )


def _normalize_question(question: str) -> str:
    return " ".join(question.lower().split())


class GroundTruthRegistry:
    """Maps document fingerprints to :class:`DocumentTruth` entries.

    Thread-safety contract: lookups are single dict reads (atomic under the
    GIL) and truths are immutable once registered, so executor worker
    threads read without locking; registration/merge/clear — which happen
    during corpus generation, never concurrently with execution — take a
    lock so even a pathological overlap cannot corrupt the table.
    """

    #: Writes-only guard: the class's documented contract is lock-free
    #: reads (single atomic dict lookups of immutable truths).
    _GUARDED_BY = {"_truths": ("_lock", "writes")}

    def __init__(self):
        self._truths: Dict[str, DocumentTruth] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._truths)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._truths

    def register(self, text: str, truth: DocumentTruth) -> str:
        """Register ``truth`` for a document given its full text.

        Returns the fingerprint used as the key.
        """
        fp = fingerprint_text(text)
        with self._lock:
            self._truths[fp] = truth
        return fp

    def register_fingerprint(self, fingerprint: str, truth: DocumentTruth) -> None:
        with self._lock:
            self._truths[fingerprint] = truth

    def lookup(self, text: str) -> Optional[DocumentTruth]:
        return self._truths.get(fingerprint_text(text))

    def lookup_fingerprint(self, fingerprint: str) -> Optional[DocumentTruth]:
        return self._truths.get(fingerprint)

    def predicate_truth(self, text: str, predicate: str) -> Optional[bool]:
        """True/False if the oracle knows this predicate for this text."""
        truth = self.lookup(text)
        if truth is None:
            return None
        want = _normalize_question(predicate)
        for known, answer in truth.predicates.items():
            if _normalize_question(known) == want:
                return answer
        # Substring match lets slightly rephrased predicates still hit.
        for known, answer in truth.predicates.items():
            norm = _normalize_question(known)
            if norm in want or want in norm:
                return answer
        return None

    def field_truth(self, text: str, field_name: str) -> Tuple[bool, Any]:
        """(known?, value) for a field of this document."""
        truth = self.lookup(text)
        if truth is None:
            return False, None
        key = field_name.lower()
        for known, value in truth.fields.items():
            if known.lower() == key:
                return True, value
        return False, None

    def difficulty(self, text: str, default: float = 0.5) -> float:
        truth = self.lookup(text)
        return truth.difficulty if truth is not None else default

    def clear(self) -> None:
        with self._lock:
            self._truths.clear()

    # -- persistence (sidecar files shipped with generated corpora) --------

    def save(self, path: Path) -> None:
        """Write all registered truths to a JSON sidecar file."""
        payload = {fp: truth.to_dict() for fp, truth in self._truths.items()}
        Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))

    def load(self, path: Path) -> int:
        """Merge truths from a JSON sidecar file; returns entries loaded."""
        payload = json.loads(Path(path).read_text())
        with self._lock:
            for fp, data in payload.items():
                self._truths[fp] = DocumentTruth.from_dict(data)
        return len(payload)


_global_oracle = GroundTruthRegistry()


def global_oracle() -> GroundTruthRegistry:
    """The process-global ground-truth registry."""
    return _global_oracle
