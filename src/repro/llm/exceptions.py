"""Exception hierarchy for the simulated LLM runtime."""

from __future__ import annotations


class LLMError(Exception):
    """Base class for all simulated-runtime errors."""


class ContextWindowExceeded(LLMError):
    """The prompt did not fit in the model's context window."""

    def __init__(self, model: str, prompt_tokens: int, context_window: int):
        self.model = model
        self.prompt_tokens = prompt_tokens
        self.context_window = context_window
        super().__init__(
            f"prompt of {prompt_tokens} tokens exceeds {model}'s "
            f"context window of {context_window} tokens"
        )


class UnknownModelError(LLMError):
    """A request referenced a model that is not registered."""


class InvalidRequestError(LLMError):
    """A structurally invalid request (empty fields, bad parameters)."""
