"""Process-wide memoization of hot text-derived values.

Every simulated LLM call re-derives the same two pure functions of the
document text — its token count and its oracle fingerprint — and a record's
document flows through dozens of (model x operator x strategy) calls per
run.  Both functions are O(len(text)) (a regex walk, a SHA-256), so the
repeated derivation dominates real wall-clock time even though the
*simulated* clock never sees it.

:class:`TextMemo` is a small bounded memo table keyed on the text itself.
CPython caches a ``str``'s hash in the object, and dict probes shortcut on
pointer identity, so a hit on the *same* string object costs one dict
lookup; a hit on an equal-but-distinct string costs one hash + one memcmp —
both far cheaper than recomputing.  Eviction is FIFO: these are
perf caches for a working set of documents, not semantic caches, so the
cheapest possible hit path wins over strict LRU bookkeeping.

The tokenizer and oracle own module-level instances; :func:`memo_stats` and
:func:`clear_memos` aggregate them for tests and diagnostics.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

#: Default entry cap per memo.  Entries hold references to document strings
#: that already live elsewhere (records, corpora), so the marginal memory is
#: one dict slot per entry.
DEFAULT_MAX_ENTRIES = 16_384

_SENTINEL = object()


class TextMemo:
    """A bounded text -> value memo with hit/miss/eviction counters."""

    __slots__ = ("name", "max_entries", "_values", "hits", "misses",
                 "evictions")

    def __init__(self, name: str, max_entries: int = DEFAULT_MAX_ENTRIES):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.name = name
        self.max_entries = max_entries
        self._values: Dict[str, Any] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get_or_compute(self, text: str, compute: Callable[[str], Any]) -> Any:
        # Deliberately lock-free: this is the hottest path in the process
        # (every token count and fingerprint), and each individual dict
        # get/set is atomic under the GIL.  Values are pure functions of the
        # text, so a race at worst computes the same value twice; the
        # counters may undercount under contention (they are diagnostics,
        # not accounting).  Eviction tolerates a concurrent eviction of the
        # same oldest key.
        value = self._values.get(text, _SENTINEL)
        if value is not _SENTINEL:
            self.hits += 1
            return value
        self.misses += 1
        value = compute(text)
        if len(self._values) >= self.max_entries:
            try:
                del self._values[next(iter(self._values))]
                self.evictions += 1
            except (KeyError, RuntimeError, StopIteration):
                pass  # another thread evicted (or cleared) first
        self._values[text] = value
        return value

    def __len__(self) -> int:
        return len(self._values)

    def clear(self) -> None:
        self._values.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._values),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


#: All memos registered at import time (tokenizer, oracle).
_registry: List[TextMemo] = []


def register_memo(memo: TextMemo) -> TextMemo:
    _registry.append(memo)
    return memo


def memo_stats() -> Dict[str, Dict[str, int]]:
    """Per-memo hit/miss/eviction counters (diagnostics and tests)."""
    return {memo.name: memo.stats() for memo in _registry}


def clear_memos() -> None:
    """Drop all memoized values and reset counters (test isolation)."""
    for memo in _registry:
        memo.clear()
