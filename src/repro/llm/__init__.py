"""Simulated LLM runtime.

This package replaces the hosted LLM APIs that Palimpzest normally calls
(OpenAI, Together, ...) with a fully deterministic, offline runtime that
preserves everything the rest of the system cares about:

* **Model diversity** — a registry of :class:`~repro.llm.models.ModelCard`
  entries with distinct prices, speeds, and quality tiers, so the optimizer
  has a real trade-off space to search.
* **Cost accounting** — every simulated call counts prompt/completion tokens
  with a deterministic tokenizer and accrues USD cost from the model card.
* **Latency accounting** — calls advance a :class:`~repro.llm.clock.VirtualClock`
  by a latency derived from token counts and the model's speed, so pipelines
  report realistic runtimes without sleeping.
* **Quality variation** — answers are produced by a deterministic semantic
  engine (:mod:`repro.llm.semantics`) and then degraded by a seeded,
  quality-dependent error process, so better models really do produce better
  outputs on the same documents.

The public surface is :class:`SimulatedLLMClient` plus the model registry.
"""

from repro.llm.clock import VirtualClock
from repro.llm.tokenizer import count_tokens
from repro.llm.models import (
    ModelCard,
    ModelRegistry,
    default_registry,
    get_model,
    register_model,
    available_models,
)
from repro.llm.usage import LLMUsage, UsageLedger
from repro.llm.client import (
    LLMClient,
    SimulatedLLMClient,
    ExtractionRequest,
    BooleanRequest,
    CompletionRequest,
    LLMResponse,
)
from repro.llm.cache import CallCache, CacheStats
from repro.llm.memo import TextMemo, clear_memos, memo_stats
from repro.llm.oracle import GroundTruthRegistry, global_oracle, fingerprint_text
from repro.llm.embeddings import EmbeddingModel, cosine_similarity

__all__ = [
    "VirtualClock",
    "count_tokens",
    "ModelCard",
    "ModelRegistry",
    "default_registry",
    "get_model",
    "register_model",
    "available_models",
    "LLMUsage",
    "UsageLedger",
    "LLMClient",
    "SimulatedLLMClient",
    "ExtractionRequest",
    "BooleanRequest",
    "CompletionRequest",
    "LLMResponse",
    "CallCache",
    "CacheStats",
    "TextMemo",
    "clear_memos",
    "memo_stats",
    "GroundTruthRegistry",
    "global_oracle",
    "fingerprint_text",
    "EmbeddingModel",
    "cosine_similarity",
]
