"""The multi-tenant session store behind ``repro serve``.

Every tenant owns an isolated slice of state under
``<root>/<tenant-id>/``::

    <root>/<tenant-id>/
        tenant.json           # quota caps + spent totals (restart restore)
        runs/                 # the tenant's private RunRegistry
        sessions/<sid>.json   # replayable workspace payload + turn log

and an in-process :class:`TenantState` bundling the tenant's
:class:`~repro.llm.usage.BudgetMeter`, its live chat sessions, and the
re-entrant lock that serializes state access.  **All** handler access to
a tenant's registry, workspace, or sessions goes through
:meth:`SessionStore.acquire` — the contract pz-lint rule ``SV601``
enforces over server source — so two tenants never share a registry, a
budget, or a lock, and requests for different tenants proceed fully in
parallel.

Quota semantics (see ``docs/server.md``):

* **pre-turn**: a turn against an exhausted budget is rejected before
  any agent or pipeline spend (:meth:`BudgetMeter.precheck` —
  ``spent >= cap`` rejects, so an *exactly-at-budget* meter is spent).
* **mid-run**: every simulated LLM call charges the meter *after* the
  ledger records it (no lost accounting), and the breach aborts the
  pipeline at the next inter-operator checkpoint; the turn completes
  with status ``quota_rejected`` and the partial spend stands.
* **admin**: raising the caps via :meth:`SessionStore.set_quota`
  unblocks the tenant immediately.
"""

from __future__ import annotations

import json
import logging
import queue
import re
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.llm.usage import BudgetMeter, QuotaExceededError
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    Telemetry,
    bind_context,
    current_context,
    wall_perf,
)
from repro.server.progress import ProgressBuffer, progress_events_from_trace

__all__ = ["SessionStore", "TenantState", "ServerSession", "TurnState",
           "TurnWorkerPool", "WorkerPoolSaturated",
           "DEFAULT_TENANTS_ROOT"]

DEFAULT_TENANTS_ROOT = ".repro/tenants"

_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")

#: How many events a persisted turn keeps (the live stream is unbounded
#: in memory for the turn's lifetime; disk keeps the tail).
_PERSISTED_EVENTS = 500

#: The marker every quota failure carries (``QuotaExceededError``
#: messages all start with ``"quota exhausted (<stage>)"``); the store
#: scans agent error observations for it to classify a turn that
#: aborted mid-run inside a tool.
_QUOTA_MARKER = "quota exhausted"

#: Last-resort channel for worker-pool jobs that escape their own error
#: handling — operational telemetry is per-store, the pool is not.
_log = logging.getLogger(__name__)


class WorkerPoolSaturated(RuntimeError):
    """The async-turn worker pool's bounded queue is full.

    The HTTP layer maps this to ``503`` with a ``Retry-After`` header;
    the store never queues unboundedly on behalf of ``wait=false``.
    """

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


class TurnWorkerPool:
    """Fixed-size worker pool with a bounded queue for async turns.

    Replaces the unbounded thread-per-turn model: ``wait=false`` turns
    are submitted here, at most ``workers`` run concurrently, at most
    ``queue_size`` wait, and anything beyond that is rejected with
    :class:`WorkerPoolSaturated` — back-pressure instead of thread
    exhaustion.  Worker threads are lazy (a store that never sees an
    async turn spawns none) and daemonized.
    """

    _GUARDED_BY = {"_threads": "_lock", "_active": "_lock"}

    def __init__(self, workers: int = 4, queue_size: int = 16,
                 name: str = "turn-worker"):
        self.workers = max(1, int(workers))
        self.queue_size = max(1, int(queue_size))
        self.name = name
        self._queue: "queue.Queue" = queue.Queue(maxsize=self.queue_size)
        self._lock = threading.Lock()
        self._threads: List[threading.Thread] = []
        self._active = 0

    def submit(self, fn) -> None:
        """Enqueue one job; raises :class:`WorkerPoolSaturated` when full."""
        with self._lock:
            while len(self._threads) < self.workers:
                worker = threading.Thread(
                    target=self._worker,
                    name=f"{self.name}-{len(self._threads)}",
                    daemon=True,
                )
                self._threads.append(worker)
                worker.start()
        try:
            self._queue.put_nowait(fn)
        except queue.Full:
            raise WorkerPoolSaturated(
                f"turn worker pool saturated ({self.workers} workers, "
                f"{self.queue_size} queued); retry shortly",
            ) from None

    def _worker(self) -> None:
        while True:
            fn = self._queue.get()
            if fn is None:
                return
            with self._lock:
                self._active += 1
            try:
                fn()
            except Exception:
                # A job that escapes its own error handling must not
                # kill the worker: dead threads stay in ``_threads``,
                # so submit() would never replace them and each failure
                # would permanently shrink the pool by one.
                _log.exception("%s: job raised", self.name)
            finally:
                with self._lock:
                    self._active -= 1
                self._queue.task_done()

    def stats(self) -> Dict[str, Any]:
        """Best-effort occupancy snapshot (feeds the saturation gauge)."""
        with self._lock:
            active = self._active
            started = len(self._threads)
        queued = self._queue.qsize()  # nondet: ok(best-effort pool occupancy for operational telemetry only)
        capacity = self.workers + self.queue_size
        return {
            "workers": self.workers,
            "started": started,
            "active": active,
            "queued": queued,
            "capacity": capacity,
            "saturation": round((active + queued) / capacity, 4),
        }

    def close(self) -> None:
        """Stop accepting work and let idle workers drain out."""
        with self._lock:
            started = len(self._threads)
        for _ in range(started):
            try:
                self._queue.put_nowait(None)
            except queue.Full:  # workers will still exit on next get
                break


def _check_id(kind: str, value: str) -> str:
    if not _ID_RE.match(value or ""):
        raise ValueError(
            f"invalid {kind} id {value!r}: ids are 1-64 chars of "
            "[A-Za-z0-9_.-] and start alphanumeric"
        )
    return value


class TurnState:
    """One chat turn: request, outcome, usage delta, progress events.

    Written by the turn worker, read by HTTP threads — every mutable
    field is guarded by the turn's own lock; the event stream lives in
    its :class:`~repro.server.progress.ProgressBuffer` (which carries
    its own condition variable).
    """

    _GUARDED_BY = {
        "status": "_lock",
        "reply": "_lock",
        "tools": "_lock",
        "error": "_lock",
        "usage_delta": "_lock",
    }

    def __init__(self, turn_id: str, message: str,
                 request_id: Optional[str] = None):
        self.turn_id = turn_id
        self.message = message
        #: Correlation id of the HTTP request that created the turn —
        #: immutable after construction, shared with every telemetry
        #: log line and progress event the turn produces.
        self.request_id = request_id
        self.events = ProgressBuffer()
        self._lock = threading.Lock()
        self.status = "running"  # running | ok | quota_rejected | error
        self.reply: Optional[str] = None
        self.tools: List[str] = []
        self.error: Optional[str] = None
        self.usage_delta: Dict[str, Any] = {}

    def finish(
        self,
        status: str,
        reply: Optional[str],
        tools: List[str],
        usage: Dict[str, Any],
        error: Optional[str] = None,
    ) -> None:
        with self._lock:
            self.status = status
            self.reply = reply
            self.tools = list(tools)
            self.usage_delta = dict(usage)
            self.error = error
        self.events.close()

    def fail_if_running(self, error: str) -> bool:
        """Error out a turn that never finished; no-op otherwise.

        The infrastructure-failure path in
        :meth:`SessionStore._run_turn` uses this so a turn whose worker
        crashed outside the normal chat error handling (session evicted
        mid-queue, persistence I/O error) is never left in ``running``
        forever.  Returns whether this call performed the transition.
        """
        with self._lock:
            if self.status != "running":
                return False
            self.status = "error"
            self.reply = error
            self.error = error
            self.usage_delta = {"cost_usd": 0.0, "tokens": 0}
        self.events.close()
        return True

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "turn_id": self.turn_id,
                "message": self.message,
                "request_id": self.request_id,
                "status": self.status,
                "reply": self.reply,
                "tools": list(self.tools),
                "usage": dict(self.usage_delta),
                "error": self.error,
                "events": len(self.events),
            }

    def to_payload(self) -> Dict[str, Any]:
        """The JSON-able form persisted in the session file."""
        payload = self.to_dict()
        payload["events"] = self.events.snapshot()[-_PERSISTED_EVENTS:]
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "TurnState":
        turn = cls(payload["turn_id"], payload.get("message", ""),
                   request_id=payload.get("request_id"))
        turn.events.extend(payload.get("events") or [])
        turn.finish(
            payload.get("status", "ok"),
            payload.get("reply"),
            list(payload.get("tools") or []),
            dict(payload.get("usage") or {}),
            payload.get("error"),
        )
        return turn


class ServerSession:
    """One tenant chat session: the live PalimpChat session + turn log.

    ``turn_lock`` serializes turns *within* the session (two concurrent
    POSTs to the same session run one after the other); sessions of the
    same tenant — and of different tenants — run concurrently.
    """

    def __init__(self, session_id: str, chat_session, title: str):
        self.session_id = session_id
        self.chat = chat_session
        self.title = title
        self.turn_lock = threading.Lock()
        #: Turn log, append-only under the owning tenant's lock.
        self.turns: List[TurnState] = []

    def next_turn_id(self) -> str:
        return f"t-{len(self.turns) + 1:04d}"

    def find_turn(self, turn_id: str) -> TurnState:
        for turn in self.turns:
            if turn.turn_id == turn_id:
                return turn
        raise KeyError(
            f"no turn {turn_id!r} in session {self.session_id!r}")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "session_id": self.session_id,
            "title": self.title,
            "turns": len(self.turns),
            "pipeline": self.chat.workspace.describe_pipeline(),
        }

    def to_payload(self) -> Dict[str, Any]:
        return {
            "session_id": self.session_id,
            "title": self.title,
            "workspace": self.chat.workspace.to_payload(),
            "turns": [turn.to_payload() for turn in self.turns],
        }


class TenantState:
    """One tenant's isolated state; mutate only under ``lock``.

    :meth:`SessionStore.acquire` hands this out with ``lock`` held;
    handlers keep their critical sections short (resolve a session,
    build a registry handle) and never hold it across a chat turn —
    otherwise streaming reads of an in-flight turn would deadlock.
    """

    _GUARDED_BY = {"sessions": "lock"}

    def __init__(self, tenant_id: str, root: Path, budget: BudgetMeter):
        self.tenant_id = tenant_id
        self.root = root
        self.budget = budget
        self.lock = threading.RLock()
        self.sessions: Dict[str, ServerSession] = {}

    # All methods below assume ``lock`` is held (acquire() guarantees
    # it for handlers; SessionStore internals re-enter the RLock).

    def registry(self):
        """The tenant's private run registry (``<root>/runs``)."""
        from repro.obs.registry import RunRegistry

        return RunRegistry(str(self.root / "runs"))

    def get_session(self, session_id: str) -> ServerSession:
        with self.lock:
            try:
                return self.sessions[session_id]
            except KeyError:
                raise KeyError(
                    f"tenant {self.tenant_id!r} has no session "
                    f"{session_id!r}") from None

    def peek_session(self, session_id: str) -> Optional[ServerSession]:
        with self.lock:
            return self.sessions.get(session_id)

    def put_session(self, session: ServerSession) -> None:
        with self.lock:
            self.sessions[session.session_id] = session

    def pop_session(self, session_id: str) -> Optional[ServerSession]:
        with self.lock:
            return self.sessions.pop(session_id, None)

    def session_ids(self) -> List[str]:
        with self.lock:
            return sorted(self.sessions)

    def session_rows(self) -> List[Dict[str, Any]]:
        with self.lock:
            return [
                self.sessions[sid].to_dict()
                for sid in sorted(self.sessions)
            ]

    def sessions_dir(self) -> Path:
        return self.root / "sessions"

    def usage(self) -> Dict[str, Any]:
        return self.budget.snapshot()

    def to_dict(self) -> Dict[str, Any]:
        with self.lock:
            session_count = len(self.sessions)
        return {
            "tenant_id": self.tenant_id,
            "usage": self.usage(),
            "sessions": session_count,
            "runs": len(self.registry().list()),
        }


class SessionStore:
    """Tenant registry + session lifecycle + quota accounting.

    The single shared object behind the HTTP layer.  Its own lock only
    guards the tenant map; everything tenant-scoped nests under the
    tenant's lock, so the store never serializes two tenants against
    each other.
    """

    _GUARDED_BY = {"_tenants": "_lock"}

    def __init__(
        self,
        root: str = DEFAULT_TENANTS_ROOT,
        default_max_cost_usd: Optional[float] = None,
        default_max_tokens: Optional[int] = None,
        agent_model: Optional[str] = "gpt-4o",
        telemetry=None,
        telemetry_root: Optional[str] = None,
        async_workers: int = 4,
        async_queue: int = 16,
    ):
        """``telemetry`` accepts an explicit :class:`Telemetry`, ``None``
        (construct one under ``telemetry_root``, default
        ``<root>/../telemetry``), or ``False`` (fully off —
        :data:`~repro.obs.telemetry.NULL_TELEMETRY`).  ``async_workers``
        / ``async_queue`` bound the ``wait=false`` turn worker pool."""
        self.root = Path(root)
        self.default_max_cost_usd = default_max_cost_usd
        self.default_max_tokens = default_max_tokens
        self.agent_model = agent_model
        if telemetry is None or telemetry is True:
            telemetry = Telemetry(
                root=telemetry_root or self.root.parent / "telemetry")
        elif telemetry is False:
            telemetry = NULL_TELEMETRY
        self.telemetry = telemetry
        self.worker_pool = TurnWorkerPool(
            workers=async_workers, queue_size=async_queue)
        self._lock = threading.Lock()
        self._tenants: Dict[str, TenantState] = {}
        self.telemetry.ops.gauge("pool.workers").set(
            self.worker_pool.workers)

    # -- tenant lifecycle ----------------------------------------------

    def acquire(self, tenant_id: str):
        """Context manager: the tenant's state with its lock held.

        The only sanctioned path to a tenant's registry, workspace, or
        sessions (pz-lint ``SV601``).  Creates the tenant on first use
        (restoring persisted quota/usage if ``tenant.json`` exists).
        """
        tenant = self._tenant(tenant_id)
        return _AcquiredTenant(tenant)

    def _tenant(self, tenant_id: str) -> TenantState:
        _check_id("tenant", tenant_id)
        with self._lock:
            tenant = self._tenants.get(tenant_id)
            if tenant is None:
                tenant = self._load_tenant(tenant_id)
                self._tenants[tenant_id] = tenant
            return tenant

    def _load_tenant(self, tenant_id: str) -> TenantState:
        root = self.root / tenant_id
        root.mkdir(parents=True, exist_ok=True)
        budget = BudgetMeter(
            max_cost_usd=self.default_max_cost_usd,
            max_tokens=self.default_max_tokens,
        )
        meta_path = root / "tenant.json"
        if meta_path.is_file():
            with open(meta_path, encoding="utf-8") as handle:
                meta = json.load(handle)
            quota = meta.get("quota") or {}
            budget.set_limits(
                max_cost_usd=quota.get("max_cost_usd"),
                max_tokens=quota.get("max_tokens"),
            )
            spent = meta.get("usage") or {}
            budget.charge_totals(
                cost_usd=float(spent.get("cost_usd", 0.0)),
                tokens=int(spent.get("tokens", 0)),
                calls=int(spent.get("calls", 0)),
            )
        return TenantState(tenant_id, root, budget)

    def tenant_ids(self) -> List[str]:
        """Known tenants: in-memory plus any persisted on disk."""
        with self._lock:
            known = set(self._tenants)
        if self.root.is_dir():
            for entry in self.root.iterdir():
                if entry.is_dir() and _ID_RE.match(entry.name):
                    known.add(entry.name)
        return sorted(known)

    # -- sessions -------------------------------------------------------

    def ensure_session(
        self,
        tenant_id: str,
        session_id: Optional[str] = None,
        title: str = "PalimpChat session",
    ) -> Dict[str, Any]:
        """Create a session — or resume one from memory or disk.

        Returns the session row plus ``"resumed": bool``.  A fresh
        session gets the next sequential id (``s-0001``, ...); naming
        an id resumes it (from the persisted payload when the process
        restarted since it was created).
        """
        with self.acquire(tenant_id) as tenant:
            if session_id is not None:
                _check_id("session", session_id)
                existing = tenant.peek_session(session_id)
                if existing is not None:
                    return {**existing.to_dict(), "resumed": True}
                persisted = tenant.sessions_dir() / f"{session_id}.json"
                if persisted.is_file():
                    session = self._resume_session(tenant, persisted)
                    return {**session.to_dict(), "resumed": True}
            sid = session_id or self._next_session_id(tenant)
            session = ServerSession(
                sid, self._new_chat_session(tenant), title)
            tenant.put_session(session)
            self._persist_session(tenant, session)
            self._persist_tenant(tenant)
            return {**session.to_dict(), "resumed": False}

    def _new_chat_session(self, tenant: TenantState):
        from repro.chat.session import PalimpChatSession

        chat = PalimpChatSession(agent_model=self.agent_model)
        chat.workspace.attach_root(tenant.root)
        chat.workspace.budget = tenant.budget
        # Wall-clock ops hook only — the engine times optimize/execute
        # phases into OpsMetrics; deterministic artifacts are untouched.
        chat.workspace.telemetry = (
            self.telemetry if self.telemetry.enabled else None)
        # The agent's own reasoning spend counts against the tenant
        # quota too, not just pipeline execution.
        chat.agent_ledger.attach_budget(tenant.budget)
        return chat

    def _next_session_id(self, tenant: TenantState) -> str:
        highest = 0
        taken = set(tenant.session_ids())
        sessions_dir = tenant.sessions_dir()
        if sessions_dir.is_dir():
            taken.update(p.stem for p in sessions_dir.glob("*.json"))
        for sid in sorted(taken):
            match = re.match(r"^s-(\d+)$", sid)
            if match:
                highest = max(highest, int(match.group(1)))
        return f"s-{highest + 1:04d}"

    def _resume_session(self, tenant: TenantState,
                        path: Path) -> ServerSession:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        chat = self._new_chat_session(tenant)
        chat.workspace.apply_payload(payload.get("workspace") or {})
        session = ServerSession(
            payload["session_id"], chat,
            payload.get("title", "PalimpChat session"))
        for turn_payload in payload.get("turns") or []:
            session.turns.append(TurnState.from_payload(turn_payload))
        tenant.put_session(session)
        return session

    def evict_session(self, tenant_id: str, session_id: str) -> bool:
        """Drop a session from memory and disk; True if it existed."""
        with self.acquire(tenant_id) as tenant:
            existed = tenant.pop_session(session_id) is not None
            persisted = tenant.sessions_dir() / f"{session_id}.json"
            if persisted.is_file():
                persisted.unlink()
                existed = True
            return existed

    # -- turns ----------------------------------------------------------

    def run_turn(
        self,
        tenant_id: str,
        session_id: str,
        message: str,
        wait: bool = True,
    ) -> TurnState:
        """Run one chat turn against a tenant session.

        Raises :class:`QuotaExceededError` *before* creating the turn
        when the tenant's budget is already exhausted (the 429 path).
        With ``wait=False`` the turn runs on the bounded
        :class:`TurnWorkerPool` and the returned :class:`TurnState`
        starts in status ``running`` — poll the turn resource or stream
        its events; a saturated pool raises
        :class:`WorkerPoolSaturated` (the 503 path) without creating a
        turn.
        """
        telemetry = self.telemetry
        request_id = (current_context().get("request_id")
                      or telemetry.new_request_id())
        with self.acquire(tenant_id) as tenant:
            session = tenant.get_session(session_id)
            try:
                tenant.budget.precheck()
            except QuotaExceededError:
                telemetry.ops.counter(
                    "quota.rejections_total", tenant=tenant_id).inc()
                telemetry.ops.histogram("turn.quota_outcome").observe(1.0)
                telemetry.event("quota_rejected", tenant=tenant_id,
                                session=session_id, stage="pre_turn")
                raise
            turn = TurnState(session.next_turn_id(), message,
                             request_id=request_id)
            session.turns.append(turn)
        if wait:
            self._run_turn(tenant_id, session_id, turn)
            return turn
        context_fields = dict(current_context())
        context_fields.update(request_id=request_id, tenant=tenant_id,
                              session=session_id, turn=turn.turn_id)

        def job():  # pool thread: re-bind the submitter's correlation ids
            with bind_context(**context_fields):
                try:
                    self._run_turn(tenant_id, session_id, turn)
                finally:
                    self._update_pool_gauges()

        try:
            self.worker_pool.submit(job)
        except WorkerPoolSaturated:
            with self.acquire(tenant_id):
                # Remove by identity, not position: a concurrent POST
                # may have appended another turn after ours, and the
                # session itself may have been deleted in between —
                # either way the rejected turn must not survive as a
                # ghost "running" row.
                try:
                    session.turns.remove(turn)
                except ValueError:
                    pass
            telemetry.ops.counter("pool.rejected_total").inc()
            telemetry.ops.histogram(
                "pool.saturation_rejections").observe(1.0)
            telemetry.event("turn_rejected_saturated", tenant=tenant_id,
                            session=session_id)
            self._update_pool_gauges()
            raise
        self._update_pool_gauges()
        return turn

    def _update_pool_gauges(self) -> None:
        stats = self.worker_pool.stats()
        ops = self.telemetry.ops
        ops.gauge("pool.workers").set(stats["workers"])
        ops.gauge("pool.active").set(stats["active"])
        ops.gauge("pool.queued").set(stats["queued"])
        ops.gauge("pool.saturation").set(stats["saturation"])

    def _run_turn(self, tenant_id: str, session_id: str,
                  turn: TurnState) -> None:
        """Run one turn without ever leaving it stuck in ``running``.

        The chat call's own failures are handled inside
        :meth:`_run_turn_body`; this wrapper catches *infrastructure*
        failures around it (session evicted while the turn was queued,
        persistence I/O errors, trace-export bugs), marks the turn
        errored, keeps the in-flight gauge balanced, and re-raises —
        synchronous callers still see the exception, and the worker
        pool's barrier logs it for async turns instead of dying.
        """
        telemetry = self.telemetry
        telemetry.ops.gauge("turns.in_flight", tenant=tenant_id).add(1)
        try:
            self._run_turn_body(tenant_id, session_id, turn)
        except Exception as exc:
            with bind_context(request_id=turn.request_id,
                              tenant=tenant_id, session=session_id,
                              turn=turn.turn_id):
                telemetry.error("turn_infra_error", exc)  # guarded-by: ok(Telemetry.error is the structured-log method, not TurnState.error)
                if turn.fail_if_running(f"{type(exc).__name__}: {exc}"):
                    telemetry.ops.counter(
                        "turns.completed_total", tenant=tenant_id,
                        status="error").inc()
            raise
        finally:
            telemetry.ops.gauge("turns.in_flight",
                                tenant=tenant_id).add(-1)

    def _run_turn_body(self, tenant_id: str, session_id: str,
                       turn: TurnState) -> None:
        telemetry = self.telemetry
        with self.acquire(tenant_id) as tenant:
            session = tenant.get_session(session_id)
        budget = tenant.budget
        spent_cost = budget.spent_cost_usd
        spent_tokens = budget.spent_tokens
        buffer = turn.events
        request_id = turn.request_id

        def tee_event(event):
            # Live progress events carry the turn's correlation id so a
            # streaming client can join them back to its HTTP request.
            tagged = dict(event)
            tagged["request_id"] = request_id
            buffer.emit(tagged)

        with bind_context(request_id=request_id, tenant=tenant_id,
                          session=session_id, turn=turn.turn_id):
            telemetry.event("turn_start",
                            message_chars=len(turn.message))
            started = wall_perf()
            with session.turn_lock:
                chat = session.chat
                chat.on_event = tee_event  # guarded-by: ok(chat is only driven while holding session.turn_lock)
                ran_before = len(chat.workspace.run_history)
                try:
                    response = chat.chat(turn.message)
                except QuotaExceededError as exc:
                    status, reply, tools, error = (
                        "quota_rejected", str(exc), [], str(exc))
                    telemetry.event("quota_rejected", stage="mid_run")
                except Exception as exc:  # surfaced as the turn's error
                    status = "error"
                    reply = error = f"{type(exc).__name__}: {exc}"
                    tools = []
                    telemetry.error("turn_error", exc)  # guarded-by: ok(Telemetry.error is the structured-log method, not TurnState.error)
                else:
                    tools = list(response.tool_sequence)
                    reply, error = response.text, None
                    status = "ok"
                    if self._turn_hit_quota(response):
                        status = "quota_rejected"
                        telemetry.event("quota_rejected",
                                        stage="mid_run_tool")
                finally:
                    chat.on_event = None  # guarded-by: ok(chat is only driven while holding session.turn_lock)
                # Span-derived tail: when this turn executed a pipeline,
                # summarize its tracer spans into the event stream so late
                # (and post-restart) readers see where the time went.
                if len(chat.workspace.run_history) > ran_before:
                    trace = chat.workspace.last_trace
                    if trace is not None:
                        from repro.obs.export import to_plain_json

                        tail = progress_events_from_trace(
                            to_plain_json(trace))
                        for event in tail:
                            event["request_id"] = request_id
                        buffer.extend(tail)
            elapsed = wall_perf() - started
            usage = {
                "cost_usd": round(budget.spent_cost_usd - spent_cost, 6),
                "tokens": budget.spent_tokens - spent_tokens,
            }
            turn.finish(status, reply, tools, usage, error)
            self._record_turn_metrics(tenant_id, status, elapsed, budget)
            telemetry.event(
                "turn_finish", status=status, tools=len(tools),
                cost_usd=usage["cost_usd"], tokens=usage["tokens"],
                seconds=round(elapsed, 6),
            )
            with self.acquire(tenant_id) as tenant:
                self._persist_session(tenant, session)
                self._persist_tenant(tenant)

    def _record_turn_metrics(self, tenant_id: str, status: str,
                             elapsed: float, budget: BudgetMeter) -> None:
        """Feed one finished turn into the wall-clock metrics registry."""
        ops = self.telemetry.ops
        ops.counter("turns.completed_total", tenant=tenant_id,
                    status=status).inc()
        # turns.in_flight is owned by _run_turn's try/finally — never
        # decremented here, so an exception anywhere in the body cannot
        # leak the gauge.
        ops.histogram("turn.wall_seconds").observe(elapsed)
        ops.histogram("turn.wall_seconds", tenant=tenant_id).observe(elapsed)
        rejected = 1.0 if status == "quota_rejected" else 0.0
        ops.histogram("turn.quota_outcome").observe(rejected)
        if rejected:
            ops.counter("quota.rejections_total", tenant=tenant_id).inc()
        snapshot = budget.snapshot()
        ops.gauge("tenant.spent_cost_usd", tenant=tenant_id).set(
            snapshot["spent_cost_usd"])
        ops.gauge("tenant.spent_tokens", tenant=tenant_id).set(
            snapshot["spent_tokens"])
        if snapshot.get("max_cost_usd") is not None:
            ops.gauge("tenant.quota_cost_usd", tenant=tenant_id).set(
                snapshot["max_cost_usd"])

    @staticmethod
    def _turn_hit_quota(response) -> bool:
        """Did any agent step abort on the budget mid-turn?

        The ReAct agent converts tool exceptions into error
        observations; a quota breach inside ``execute_pipeline`` (or
        the agent's own reasoning calls) surfaces there rather than
        propagating, so the store scans for the canonical marker.
        """
        result = getattr(response, "result", None)
        trace = getattr(result, "trace", None)
        for step in getattr(trace, "steps", []) or []:
            observation = getattr(step, "observation", "") or ""
            if _QUOTA_MARKER in observation.lower():
                return True
        return False

    # -- persistence ----------------------------------------------------

    def _persist_tenant(self, tenant: TenantState) -> None:
        snapshot = tenant.budget.snapshot()
        meta = {
            "tenant_id": tenant.tenant_id,
            "quota": {
                "max_cost_usd": snapshot["max_cost_usd"],
                "max_tokens": snapshot["max_tokens"],
            },
            "usage": {
                "cost_usd": snapshot["spent_cost_usd"],
                "tokens": snapshot["spent_tokens"],
                "calls": snapshot["calls"],
            },
        }
        tenant.root.mkdir(parents=True, exist_ok=True)
        with open(tenant.root / "tenant.json", "w",
                  encoding="utf-8") as handle:
            json.dump(meta, handle, indent=2, sort_keys=True)
            handle.write("\n")

    def _persist_session(self, tenant: TenantState,
                         session: ServerSession) -> None:
        sessions_dir = tenant.sessions_dir()
        sessions_dir.mkdir(parents=True, exist_ok=True)
        path = sessions_dir / f"{session.session_id}.json"
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(session.to_payload(), handle, indent=2,
                      sort_keys=True, default=str)
            handle.write("\n")

    # -- admin ----------------------------------------------------------

    def usage_rollup(self) -> Dict[str, Any]:
        """Per-tenant budget snapshots plus the summed totals."""
        tenants: Dict[str, Any] = {}
        total_cost = 0.0
        total_tokens = 0
        total_calls = 0
        for tenant_id in self.tenant_ids():
            with self.acquire(tenant_id) as tenant:
                snapshot = tenant.usage()
            tenants[tenant_id] = snapshot
            total_cost += snapshot["spent_cost_usd"]
            total_tokens += snapshot["spent_tokens"]
            total_calls += snapshot["calls"]
        return {
            "tenants": tenants,
            "total": {
                "spent_cost_usd": round(total_cost, 6),
                "spent_tokens": total_tokens,
                "calls": total_calls,
            },
            # The admin rollup surfaces the same SLO/alert table as
            # /healthz, so one call answers "who spent what" and "is
            # the service degraded".
            "health": self.telemetry.health(),
        }

    def close(self) -> None:
        """Release the worker pool and telemetry log (tests/shutdown)."""
        self.worker_pool.close()
        self.telemetry.close()

    def set_quota(
        self,
        tenant_id: str,
        max_cost_usd: Optional[float] = None,
        max_tokens: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Admin quota edit; returns the new budget snapshot."""
        with self.acquire(tenant_id) as tenant:
            tenant.budget.set_limits(
                max_cost_usd=max_cost_usd, max_tokens=max_tokens)
            self._persist_tenant(tenant)
            return tenant.usage()


class _AcquiredTenant:
    """``with store.acquire(tid) as tenant:`` — lock held inside."""

    def __init__(self, tenant: TenantState):
        self._tenant = tenant

    def __enter__(self) -> TenantState:
        self._tenant.lock.acquire()
        return self._tenant

    def __exit__(self, *exc_info) -> None:
        self._tenant.lock.release()
