"""The HTTP/JSON front end: sessions as resources, stdlib only.

``repro serve`` boots a :class:`ThreadingHTTPServer` whose handler
routes every request through the shared :class:`SessionStore`.  The
surface (full table in ``docs/server.md``):

Tenant API::

    POST   /tenants/<tid>/sessions                   create / resume
    GET    /tenants/<tid>/sessions                   list sessions
    GET    /tenants/<tid>/sessions/<sid>             session detail
    POST   /tenants/<tid>/sessions/<sid>/turns       run a chat turn
    GET    /tenants/<tid>/sessions/<sid>/turns/<tn>  turn status/reply
    GET    .../turns/<tn>/events?offset=&wait=       progress stream
    GET    /tenants/<tid>/runs                       run registry list
    GET    /tenants/<tid>/runs/<rid>                 run meta + stats
    GET    /tenants/<tid>/traces/<rid>               recorded trace
    GET    /tenants/<tid>/results/<rid>?offset=&limit=  result slice
    GET    /tenants/<tid>/usage                      budget snapshot

Admin API::

    GET    /admin/tenants                            tenants + usage
    GET    /admin/usage                              usage rollup
    POST   /admin/tenants/<tid>/quota                edit quota caps
    DELETE /admin/tenants/<tid>/sessions/<sid>       evict a session

Error mapping: unknown resources are 404, malformed requests 400, and
an exhausted budget is **429** carrying the tenant's budget snapshot —
both when the pre-turn check rejects the turn outright and when a turn
aborts mid-run on the quota (status ``quota_rejected``).

Results come back as *handles* (id + schema + count + fingerprint) with
an explicitly sliced record window — the server never inlines a whole
result set into a response.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.llm.usage import QuotaExceededError
from repro.obs.telemetry import bind_context, wall_perf
from repro.server.store import SessionStore, WorkerPoolSaturated

__all__ = ["ReproServer", "ReproRequestHandler", "serve"]

#: Longest a single events long-poll blocks before returning empty.
_MAX_WAIT_SECONDS = 30.0

_ROUTES = [
    ("GET", re.compile(r"^/healthz$"), "_handle_health"),
    ("GET", re.compile(r"^/metrics$"), "_handle_metrics"),
    ("GET", re.compile(r"^/version$"), "_handle_version"),
    ("POST", re.compile(r"^/tenants/([^/]+)/sessions$"),
     "_handle_create_session"),
    ("GET", re.compile(r"^/tenants/([^/]+)/sessions$"),
     "_handle_list_sessions"),
    ("GET", re.compile(r"^/tenants/([^/]+)/sessions/([^/]+)$"),
     "_handle_get_session"),
    ("POST", re.compile(r"^/tenants/([^/]+)/sessions/([^/]+)/turns$"),
     "_handle_post_turn"),
    ("GET",
     re.compile(r"^/tenants/([^/]+)/sessions/([^/]+)/turns/([^/]+)$"),
     "_handle_get_turn"),
    ("GET",
     re.compile(
         r"^/tenants/([^/]+)/sessions/([^/]+)/turns/([^/]+)/events$"),
     "_handle_turn_events"),
    ("GET", re.compile(r"^/tenants/([^/]+)/runs$"), "_handle_list_runs"),
    ("GET", re.compile(r"^/tenants/([^/]+)/runs/([^/]+)$"),
     "_handle_get_run"),
    ("GET", re.compile(r"^/tenants/([^/]+)/traces/([^/]+)$"),
     "_handle_get_trace"),
    ("GET", re.compile(r"^/tenants/([^/]+)/results/([^/]+)$"),
     "_handle_get_result"),
    ("GET", re.compile(r"^/tenants/([^/]+)/usage$"), "_handle_usage"),
    ("GET", re.compile(r"^/admin/tenants$"), "_handle_admin_tenants"),
    ("GET", re.compile(r"^/admin/usage$"), "_handle_admin_usage"),
    ("POST", re.compile(r"^/admin/tenants/([^/]+)/quota$"),
     "_handle_admin_quota"),
    ("DELETE", re.compile(r"^/admin/tenants/([^/]+)/sessions/([^/]+)$"),
     "_handle_admin_evict"),
]


class ReproServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the shared session store."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], store: SessionStore,
                 quiet: bool = True):
        self.store = store
        self.quiet = quiet
        super().__init__(address, ReproRequestHandler)


class ReproRequestHandler(BaseHTTPRequestHandler):
    """Routes requests to ``_handle_*`` methods via :data:`_ROUTES`.

    Every handler receives its path captures and (for POST) the parsed
    JSON body, and returns ``(status, payload)``; all tenant state is
    reached through ``self.store.acquire(...)`` (pz-lint ``SV601``).
    """

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def store(self) -> SessionStore:
        return self.server.store

    def log_message(self, format: str, *args: Any) -> None:
        if not getattr(self.server, "quiet", True):
            super().log_message(format, *args)

    # -- plumbing -------------------------------------------------------

    def _dispatch(self, method: str) -> None:
        telemetry = self.store.telemetry
        request_id = telemetry.new_request_id()
        self._request_id = request_id
        path, _, query = self.path.partition("?")
        params = _parse_query(query)
        for verb, pattern, name in _ROUTES:
            if verb != method:
                continue
            match = pattern.match(path)
            if match is None:
                continue
            route = name.replace("_handle_", "", 1)
            tenant = (match.group(1)
                      if pattern.pattern.startswith("^/tenants/")
                      else None)
            headers: Dict[str, str] = {}
            started = wall_perf()
            # Every log line and metric sample inside this scope carries
            # the request's correlation id (and tenant, when routed).
            with bind_context(request_id=request_id, tenant=tenant):
                telemetry.event("request_start", method=method,
                                route=route, path=path)
                body: Dict[str, Any] = {}
                try:
                    if method in ("POST", "PUT"):
                        body = self._read_body()
                    status, payload = getattr(self, name)(
                        *match.groups(), body=body, params=params)
                except QuotaExceededError as exc:
                    status, payload = 429, {
                        "error": "quota_exhausted",
                        "message": str(exc),
                        "spent_cost_usd": exc.spent_cost_usd,
                        "spent_tokens": exc.spent_tokens,
                    }
                except WorkerPoolSaturated as exc:
                    headers["Retry-After"] = str(
                        max(1, int(exc.retry_after)))
                    status, payload = 503, {
                        "error": "saturated",
                        "message": str(exc),
                        "retry_after": exc.retry_after,
                    }
                except (KeyError, FileNotFoundError) as exc:
                    status, payload = 404, {
                        "error": "not_found",
                        "message": _exc_text(exc),
                    }
                except ValueError as exc:
                    status, payload = 400, {"error": "bad_request",
                                            "message": str(exc)}
                except Exception as exc:  # defensive 500, logged
                    telemetry.error("request_error", exc, route=route)
                    status, payload = 500, {
                        "error": "internal",
                        "message": f"{type(exc).__name__}: {exc}",
                    }
                seconds = wall_perf() - started
                telemetry.ops.counter(
                    "http.requests_total", method=method, route=route,
                    status=str(status)).inc()
                telemetry.ops.histogram(
                    "http.request_seconds", route=route).observe(seconds)
                telemetry.ops.histogram("http.availability").observe(
                    0.0 if status >= 500 else 1.0)
                telemetry.event("request_finish", method=method,
                                route=route, status=status,
                                seconds=round(seconds, 6))
            self._send_json(status, payload, headers=headers)
            return
        telemetry.ops.counter("http.requests_total", method=method,
                              route="unrouted", status="404").inc()
        telemetry.ops.histogram("http.availability").observe(1.0)
        self._send_json(404, {"error": "not_found",
                              "message": f"no route for {method} {path}"})

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"request body is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _send_json(self, status: int, payload,
                   headers: Optional[Dict[str, str]] = None) -> None:
        """Send a JSON (dict) or plain-text (str) response body."""
        if isinstance(payload, str):
            body = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            body = json.dumps(payload, indent=2, sort_keys=True,
                              default=str).encode("utf-8")
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        request_id = getattr(self, "_request_id", None)
        if request_id:
            self.send_header("X-Request-Id", request_id)
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(body)

    # -- health / telemetry ---------------------------------------------

    def _handle_health(self, body=None, params=None):
        """Liveness + SLO verdicts: ``status`` is ``ok`` or ``degraded``
        with the firing alerts as the reason payload."""
        health = self.store.telemetry.health()
        health["service"] = "repro-serve"
        return 200, health

    def _handle_metrics(self, body=None, params=None):
        """Prometheus text exposition; ``?format=json`` for the JSON
        variant the ``repro top`` dashboard polls."""
        telemetry = self.store.telemetry
        if (params or {}).get("format") == "json":
            return 200, telemetry.metrics_payload()
        return 200, telemetry.prometheus()

    def _handle_version(self, body=None, params=None):
        from repro.cli import package_metadata

        version, description = package_metadata()
        return 200, {"service": "repro-serve", "version": version,
                     "description": description}

    # -- sessions -------------------------------------------------------

    def _handle_create_session(self, tenant_id, body=None, params=None):
        row = self.store.ensure_session(
            tenant_id,
            session_id=body.get("session_id"),
            title=body.get("title", "PalimpChat session"),
        )
        return (200 if row["resumed"] else 201), row

    def _handle_list_sessions(self, tenant_id, body=None, params=None):
        with self.store.acquire(tenant_id) as tenant:
            return 200, {"tenant_id": tenant_id,
                         "sessions": tenant.session_rows()}

    def _handle_get_session(self, tenant_id, session_id,
                            body=None, params=None):
        with self.store.acquire(tenant_id) as tenant:
            session = tenant.get_session(session_id)
            row = session.to_dict()
            row["turn_log"] = [turn.to_dict() for turn in session.turns]
            return 200, row

    # -- turns ----------------------------------------------------------

    def _handle_post_turn(self, tenant_id, session_id,
                          body=None, params=None):
        message = body.get("message")
        if not message or not isinstance(message, str):
            raise ValueError("body must carry a non-empty 'message' string")
        wait = bool(body.get("wait", True))
        turn = self.store.run_turn(tenant_id, session_id, message,
                                   wait=wait)
        row = turn.to_dict()
        row["session_id"] = session_id
        if row["status"] == "quota_rejected":
            with self.store.acquire(tenant_id) as tenant:
                row["usage_snapshot"] = tenant.usage()
            return 429, {"error": "quota_exhausted", "turn": row,
                         "message": row.get("error") or row.get("reply")}
        return (200 if row["status"] != "running" else 202), row

    def _handle_get_turn(self, tenant_id, session_id, turn_id,
                         body=None, params=None):
        with self.store.acquire(tenant_id) as tenant:
            turn = tenant.get_session(session_id).find_turn(turn_id)
        return 200, turn.to_dict()

    def _handle_turn_events(self, tenant_id, session_id, turn_id,
                            body=None, params=None):
        with self.store.acquire(tenant_id) as tenant:
            turn = tenant.get_session(session_id).find_turn(turn_id)
        offset = _int_param(params, "offset", 0)
        wait = _float_param(params, "wait", 0.0)
        # The long-poll happens *outside* the tenant lock: an in-flight
        # turn holds no tenant state while streaming, so readers never
        # block writers (or other tenants).
        events, done, next_offset = turn.events.read(
            offset=offset,
            wait_seconds=min(wait, _MAX_WAIT_SECONDS) if wait else None,
        )
        return 200, {
            "turn_id": turn_id,
            "events": events,
            "done": done,
            "next_offset": next_offset,
        }

    # -- runs / traces / results ---------------------------------------

    def _handle_list_runs(self, tenant_id, body=None, params=None):
        with self.store.acquire(tenant_id) as tenant:
            return 200, {"tenant_id": tenant_id,
                         "runs": tenant.registry().list()}

    def _handle_get_run(self, tenant_id, run_id, body=None, params=None):
        with self.store.acquire(tenant_id) as tenant:
            snapshot = tenant.registry().load(run_id)
        return 200, {"meta": snapshot.meta, "stats": snapshot.stats}

    def _handle_get_trace(self, tenant_id, run_id, body=None, params=None):
        with self.store.acquire(tenant_id) as tenant:
            snapshot = tenant.registry().load(run_id)
        if snapshot.trace is None:
            return 404, {"error": "not_found",
                         "message": f"run {run_id} recorded no trace"}
        return 200, {"run_id": run_id, "trace": snapshot.trace}

    def _handle_get_result(self, tenant_id, run_id,
                           body=None, params=None):
        with self.store.acquire(tenant_id) as tenant:
            handle = tenant.registry().handle(run_id)
        offset = _int_param(params, "offset", 0)
        limit = _int_param(params, "limit", None)
        return 200, {
            "result": handle.to_dict(),
            "offset": offset,
            "limit": limit,
            "records": handle.slice(offset=offset, limit=limit),
        }

    def _handle_usage(self, tenant_id, body=None, params=None):
        with self.store.acquire(tenant_id) as tenant:
            return 200, {"tenant_id": tenant_id, "usage": tenant.usage()}

    # -- admin ----------------------------------------------------------

    def _handle_admin_tenants(self, body=None, params=None):
        rows = []
        for tenant_id in self.store.tenant_ids():
            with self.store.acquire(tenant_id) as tenant:
                rows.append(tenant.to_dict())
        return 200, {"tenants": rows}

    def _handle_admin_usage(self, body=None, params=None):
        return 200, self.store.usage_rollup()

    def _handle_admin_quota(self, tenant_id, body=None, params=None):
        usage = self.store.set_quota(
            tenant_id,
            max_cost_usd=body.get("max_cost_usd"),
            max_tokens=body.get("max_tokens"),
        )
        return 200, {"tenant_id": tenant_id, "usage": usage}

    def _handle_admin_evict(self, tenant_id, session_id,
                            body=None, params=None):
        existed = self.store.evict_session(tenant_id, session_id)
        if not existed:
            return 404, {"error": "not_found",
                         "message": f"no session {session_id!r} for "
                                    f"tenant {tenant_id!r}"}
        return 200, {"evicted": session_id, "tenant_id": tenant_id}


def _parse_query(query: str) -> Dict[str, str]:
    params: Dict[str, str] = {}
    for chunk in query.split("&"):
        if not chunk:
            continue
        key, _, value = chunk.partition("=")
        params[key] = value
    return params


def _int_param(params: Dict[str, str], name: str,
               default: Optional[int]) -> Optional[int]:
    raw = params.get(name)
    if raw is None or raw == "":
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"query parameter {name!r} must be an integer, "
                         f"got {raw!r}")


def _float_param(params: Dict[str, str], name: str,
                 default: float) -> float:
    raw = params.get(name)
    if raw is None or raw == "":
        return default
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"query parameter {name!r} must be a number, "
                         f"got {raw!r}")


def _exc_text(exc: BaseException) -> str:
    """KeyError reprs its message; unwrap for readable 404 bodies."""
    if isinstance(exc, KeyError) and exc.args:
        return str(exc.args[0])
    return str(exc)


def serve(
    host: str = "127.0.0.1",
    port: int = 8787,
    root: str = None,
    max_cost_usd: Optional[float] = None,
    max_tokens: Optional[int] = None,
    data_dir: Optional[str] = None,
    quiet: bool = True,
    telemetry=None,
    telemetry_root: Optional[str] = None,
    async_workers: int = 4,
    async_queue: int = 16,
) -> ReproServer:
    """Build a ready-to-run server (demo datasets registered).

    Returns the server without starting it — call ``serve_forever()``
    (the CLI does) or drive it from a thread in tests.  ``port=0``
    binds an ephemeral port (see ``server.server_address``).

    ``telemetry`` follows :class:`SessionStore` semantics: ``None`` /
    ``True`` boots the wall-clock ops layer (JSONL logs under
    ``telemetry_root``), ``False`` installs the no-op variant, and a
    ready :class:`~repro.obs.telemetry.Telemetry` is used as-is.
    """
    from repro.corpora import register_demo_datasets
    from repro.server.store import DEFAULT_TENANTS_ROOT

    register_demo_datasets(data_dir)
    store = SessionStore(
        root=root or DEFAULT_TENANTS_ROOT,
        default_max_cost_usd=max_cost_usd,
        default_max_tokens=max_tokens,
        telemetry=telemetry,
        telemetry_root=telemetry_root,
        async_workers=async_workers,
        async_queue=async_queue,
    )
    return ReproServer((host, port), store, quiet=quiet)


def run_in_thread(server: ReproServer) -> threading.Thread:
    """Start ``serve_forever`` on a daemon thread (tests/smoke)."""
    thread = threading.Thread(
        target=server.serve_forever,
        name="repro-serve",
        daemon=True,
    )
    thread.start()
    return thread
