"""repro.server: the multi-tenant chat service layer.

PalimpChat "allows multiple users to build and run pipelines through a
chat interface"; this package is that serving surface for the
reproduction — an HTTP/JSON front end (stdlib only: ``http.server`` +
``threading``) over per-tenant :class:`~repro.chat.PalimpChatSession`
state:

* :mod:`repro.server.store` — the :class:`SessionStore`: per-tenant
  workspaces/registries under ``.repro/tenants/<id>/``, disk-persisted
  sessions that survive restarts, and
  :class:`~repro.llm.usage.BudgetMeter` quotas (pre-turn rejection,
  mid-run abort, admin edits).
* :mod:`repro.server.progress` — per-turn progress streams: live
  executor events plus tracer-span summaries, long-pollable.
* :mod:`repro.server.http` — the resource routes (sessions, turns,
  events, runs, traces, results, usage, admin) and ``repro serve``'s
  server object.

See ``docs/server.md`` for the API table and quota semantics.
"""

from repro.server.http import ReproServer, run_in_thread, serve
from repro.server.progress import ProgressBuffer, progress_events_from_trace
from repro.server.store import (
    DEFAULT_TENANTS_ROOT,
    ServerSession,
    SessionStore,
    TenantState,
    TurnState,
    TurnWorkerPool,
    WorkerPoolSaturated,
)

__all__ = [
    "DEFAULT_TENANTS_ROOT",
    "ProgressBuffer",
    "ReproServer",
    "ServerSession",
    "SessionStore",
    "TenantState",
    "TurnState",
    "TurnWorkerPool",
    "WorkerPoolSaturated",
    "progress_events_from_trace",
    "run_in_thread",
    "serve",
]
