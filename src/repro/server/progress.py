"""Turn progress: a thread-safe event buffer plus span-derived events.

A chat turn's execution progress reaches clients in two layers:

1. **Live events** — the executor's ``on_event`` hook fires
   ``plan_start`` / ``record_processed`` / ``operator_flush`` /
   ``plan_end`` dictionaries while the pipeline runs; the session's
   ``turn_start`` / ``turn_end`` lifecycle events bracket them.  The
   turn worker appends them all to a :class:`ProgressBuffer`, and
   ``GET .../turns/<id>/events`` serves (and long-polls) windows of it.
2. **Span-derived events** — when the turn finishes with a recorded
   trace, :func:`progress_events_from_trace` summarizes the tracer
   spans into ``span`` events (operator timings, LLM call counts) that
   are appended after the live stream, so a client that connects late —
   or reads a turn restored from disk — still sees where the time went.

The buffer is the only cross-thread channel between a turn worker and
the HTTP threads streaming it, so it carries the lock discipline:
every field is guarded by the buffer's condition variable.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["ProgressBuffer", "progress_events_from_trace"]

#: Span kinds worth surfacing as progress events (operator work and LLM
#: calls; per-record micro-spans stay in the full trace).
_EVENT_KINDS = ("plan", "operator", "llm", "chat", "agent")


class ProgressBuffer:
    """An append-only event log with blocking reads (one per turn).

    Writers call :meth:`emit` (the turn worker, via the session's
    ``on_event`` hook) and :meth:`close` when the turn is over; readers
    call :meth:`read` with the offset of the first event they have not
    seen yet, optionally waiting for news.  Events are plain dicts and
    are copied on the way in and out, so neither side can mutate the
    other's view.
    """

    _GUARDED_BY = {"_events": "_cond", "_closed": "_cond"}

    def __init__(self):
        self._cond = threading.Condition()
        self._events: List[Dict[str, Any]] = []
        self._closed = False

    def emit(self, event: Dict[str, Any]) -> None:
        """Append one event and wake any waiting readers."""
        with self._cond:
            if self._closed:
                return
            self._events.append(dict(event))
            self._cond.notify_all()

    def extend(self, events: List[Dict[str, Any]]) -> None:
        """Append many events at once (the span-derived tail)."""
        with self._cond:
            if self._closed:
                return
            self._events.extend(dict(event) for event in events)
            self._cond.notify_all()

    def close(self) -> None:
        """Mark the stream complete; readers stop waiting."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def __len__(self) -> int:
        with self._cond:
            return len(self._events)

    def read(
        self,
        offset: int = 0,
        wait_seconds: Optional[float] = None,
    ) -> Tuple[List[Dict[str, Any]], bool, int]:
        """Events from ``offset`` on, as ``(events, done, next_offset)``.

        When ``wait_seconds`` is set and nothing new is available yet,
        blocks until an event lands, the stream closes, or the wait
        times out — the long-poll the events endpoint exposes.
        ``next_offset`` is what the client passes next time.
        """
        if offset < 0:
            raise ValueError(f"offset must be >= 0, got {offset}")
        with self._cond:
            if (wait_seconds is not None and offset >= len(self._events)
                    and not self._closed):
                self._cond.wait(timeout=wait_seconds)
            events = [dict(e) for e in self._events[offset:]]
            return events, self._closed, offset + len(events)

    def snapshot(self) -> List[Dict[str, Any]]:
        """Every event so far (persisted with the turn on disk)."""
        with self._cond:
            return [dict(e) for e in self._events]


def progress_events_from_trace(
    trace: Optional[Dict[str, Any]],
    limit: int = 200,
) -> List[Dict[str, Any]]:
    """Summarize a plain-JSON trace into ``span`` progress events.

    ``trace`` is the ``repro.obs/v1`` payload a
    :class:`~repro.obs.registry.RunSnapshot` stores (``to_plain_json``
    output: a flat ``spans`` list).  Each surfaced span becomes::

        {"type": "span", "name": ..., "kind": ..., "start": ...,
         "duration": ..., "lane": ...}

    Only plan/operator/llm/chat/agent spans are surfaced, in recorded
    order, capped at ``limit`` (with a trailing ``truncated`` event
    naming how many were dropped) so one enormous run cannot bloat a
    turn's event stream.
    """
    if not trace:
        return []
    spans = trace.get("spans") or []
    events: List[Dict[str, Any]] = []
    dropped = 0
    for span in spans:
        kind = str(span.get("kind", ""))
        if kind not in _EVENT_KINDS:
            continue
        if len(events) >= limit:
            dropped += 1
            continue
        events.append({
            "type": "span",
            "name": span.get("name"),
            "kind": kind,
            "start": span.get("start"),
            "duration": span.get("duration"),
            "lane": span.get("lane"),
        })
    if dropped:
        events.append({"type": "truncated", "dropped_spans": dropped})
    return events
