"""Minimal Jinja-style template rendering.

Fig. 2 of the paper: "a Jinja-based templated syntax can be used to inject
run-time variables.  Within the tool code, if a variable is expressed in
round brackets as {{variable}}, the Archytas agent will fill the variable
with a variable available at run-time in the Python execution environment."

Supported syntax:

* ``{{ name }}`` — variable substitution (str()).
* ``{{ name.attr }}`` — dotted attribute / dict-key access.
* ``{{ name | repr }}`` — filters: ``repr``, ``json``, ``upper``, ``lower``.
* ``{{ name | lower | repr }}`` — filters chain left to right.
"""

from __future__ import annotations

import json
import re
from typing import Any, Callable, Dict, Mapping

_PLACEHOLDER_RE = re.compile(r"\{\{\s*([^{}]+?)\s*\}\}")

_FILTERS: Dict[str, Callable[[Any], str]] = {
    "repr": repr,
    "json": lambda value: json.dumps(value, default=str),
    "upper": lambda value: str(value).upper(),
    "lower": lambda value: str(value).lower(),
    "str": str,
}


class TemplateError(ValueError):
    """A template referenced a missing variable or unknown filter."""


def _resolve_path(path: str, variables: Mapping[str, Any]) -> Any:
    parts = path.split(".")
    head = parts[0]
    if head not in variables:
        raise TemplateError(
            f"template variable {head!r} is not defined; available: "
            f"{sorted(variables)}"
        )
    value = variables[head]
    for part in parts[1:]:
        if isinstance(value, Mapping) and part in value:
            value = value[part]
        elif hasattr(value, part):
            value = getattr(value, part)
        else:
            raise TemplateError(
                f"cannot resolve {path!r}: {type(value).__name__} has no "
                f"attribute or key {part!r}"
            )
    return value


def render_template(template: str, variables: Mapping[str, Any]) -> str:
    """Render ``{{...}}`` placeholders in ``template`` from ``variables``.

    >>> render_template("hello {{ who }}", {"who": "world"})
    'hello world'
    >>> render_template("x = {{ xs | repr }}", {"xs": [1, 2]})
    'x = [1, 2]'
    """

    def substitute(match: re.Match) -> str:
        expression = match.group(1)
        path, _, filters = expression.partition("|")
        filter_fns = []
        for filter_name in filters.split("|"):
            filter_name = filter_name.strip()
            if not filter_name:
                continue
            try:
                filter_fns.append(_FILTERS[filter_name])
            except KeyError:
                raise TemplateError(
                    f"unknown template filter {filter_name!r}; "
                    f"available: {sorted(_FILTERS)}"
                ) from None
        value = _resolve_path(path.strip(), variables)
        for filter_fn in filter_fns:
            value = filter_fn(value)
        return str(value)

    return _PLACEHOLDER_RE.sub(substitute, template)


def template_variables(template: str) -> list:
    """The root variable names a template references (deduplicated, ordered)."""
    seen = []
    for match in _PLACEHOLDER_RE.finditer(template):
        expression = match.group(1)
        path = expression.partition("|")[0].strip()
        root = path.split(".")[0]
        if root not in seen:
            seen.append(root)
    return seen
