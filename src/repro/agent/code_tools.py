"""Templated code tools — the paper's Fig. 2 tool style.

"Essentially, these tools correspond to templated code snippets ... The code
of each tool is a Python function with the @tool() annotation, and a
Jinja-based templated syntax can be used to inject run-time variables."
(§2.3)

A :class:`CodeTool` is defined by a *source template*: Python code with
``{{variable}}`` placeholders.  Invoking the tool renders the template with
the call arguments (list/dict arguments inject as ``repr`` so the rendered
code is valid Python), executes it in the session's Python environment (the
Beaker notebook kernel, in the demo), and returns the template's ``result``
variable.  The rendered source is kept on the invocation record so the
notebook can show the exact code each chat turn executed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.agent.templating import render_template, template_variables
from repro.agent.tools import Tool, ToolError, ToolParameter, ToolSpec


@dataclass
class CodeInvocation:
    """One rendered + executed template (what a notebook cell records)."""

    tool_name: str
    rendered_source: str
    result: Any


class CodeTool(Tool):
    """A tool whose body is a rendered-and-executed code template.

    Args:
        name: tool name.
        summary: the docstring summary the reasoning agent reads.
        template: Python source with ``{{argument}}`` placeholders.  The
            template must assign its answer to a variable named ``result``.
        parameters: model-visible parameters (all template variables must be
            covered by parameters or by the environment).
        environment: the Python namespace the code runs in (shared across
            invocations — like one notebook kernel); defaults to a fresh
            dict.
        examples: usage examples appended to the spec.
    """

    def __init__(
        self,
        name: str,
        summary: str,
        template: str,
        parameters: List[ToolParameter],
        environment: Optional[Dict[str, Any]] = None,
        examples: Optional[List[str]] = None,
    ):
        if "result" not in template:
            raise ToolError(
                f"code tool {name!r}: the template must assign a "
                "'result' variable"
            )
        param_names = {p.name for p in parameters}
        unknown = [
            v for v in template_variables(template)
            if v not in param_names
        ]
        spec = ToolSpec(
            name=name,
            summary=summary,
            parameters=list(parameters),
            returns="the template's `result` value",
            examples=list(examples or []),
        )
        # Tool.__init__ inspects a callable; give it the invoke shim.
        super().__init__(self._noop, spec)
        self.template = template
        self.environment = environment if environment is not None else {}
        self._free_variables = unknown
        self.invocations: List[CodeInvocation] = []

    @staticmethod
    def _noop() -> None:  # pragma: no cover - never called directly
        """Placeholder callable (CodeTool overrides invoke)."""

    def render(self, arguments: Dict[str, Any]) -> str:
        """Render the template with call arguments (repr-injected)."""
        variables = {
            name: repr(value) for name, value in arguments.items()
        }
        # Apply parameter defaults for omitted optionals.
        for parameter in self.spec.parameters:
            if parameter.name not in variables and not parameter.required:
                variables[parameter.name] = repr(parameter.default)
        return render_template(self.template, variables)

    def invoke(self, arguments: Dict[str, Any], agent: Any = None) -> Any:
        self.validate_arguments(arguments)
        missing_free = [
            v for v in self._free_variables if v not in self.environment
        ]
        if missing_free:
            raise ToolError(
                f"code tool {self.name!r}: template variables "
                f"{missing_free} are neither parameters nor present in the "
                "execution environment"
            )
        source = self.render(arguments)
        namespace = self.environment
        namespace["agent"] = agent
        try:
            exec(compile(source, f"<tool:{self.name}>", "exec"), namespace)
        except ToolError:
            raise
        except Exception as exc:
            raise ToolError(
                f"code tool {self.name!r} failed while executing its "
                f"template: {type(exc).__name__}: {exc}"
            ) from exc
        if "result" not in namespace:
            raise ToolError(
                f"code tool {self.name!r} finished without setting 'result'"
            )
        result = namespace.pop("result")
        self.invocations.append(
            CodeInvocation(
                tool_name=self.name, rendered_source=source, result=result
            )
        )
        return result


def code_tool(
    name: str,
    summary: str,
    template: str,
    parameters: List[ToolParameter],
    environment: Optional[Dict[str, Any]] = None,
    examples: Optional[List[str]] = None,
) -> CodeTool:
    """Factory matching the ``@tool()`` ergonomics for code templates."""
    return CodeTool(
        name=name,
        summary=summary,
        template=template,
        parameters=parameters,
        environment=environment,
        examples=examples,
    )


# ---------------------------------------------------------------------------
# The paper's Fig. 2 tool, verbatim in spirit: generate an extraction schema
# by executing a rendered code template against the repro API.
# ---------------------------------------------------------------------------

FIG2_CREATE_SCHEMA_TEMPLATE = '''\
import repro as pz

class_name = {{ schema_name }}
schema_description = {{ schema_description }}
field_names = {{ field_names }}
field_descriptions = {{ field_descriptions }}

fields = {}
for idx, field in enumerate(field_names):
    desc = field_descriptions[idx]
    fields[field] = desc

result = pz.make_schema(class_name, schema_description, fields)
'''


def fig2_create_schema_tool(
    environment: Optional[Dict[str, Any]] = None,
) -> CodeTool:
    """The Fig. 2 ``create_schema`` tool as a templated code snippet.

    "This tool should be used to generate a new extraction schema.  The
    inputs are a schema name and a set of fields. ... Field names cannot
    have spaces or special characters."
    """
    return code_tool(
        name="create_schema_code",
        summary=(
            "Generate a new extraction schema from a name, a description, "
            "and parallel lists of field names and field descriptions. "
            "Field names cannot have spaces or special characters."
        ),
        template=FIG2_CREATE_SCHEMA_TEMPLATE,
        parameters=[
            ToolParameter("schema_name", "str",
                          "the class name of the schema"),
            ToolParameter("schema_description", "str",
                          "one sentence describing the schema"),
            ToolParameter("field_names", "list",
                          "the field identifiers"),
            ToolParameter("field_descriptions", "list",
                          "one description per field"),
        ],
        environment=environment,
        examples=[
            "create_schema_code(schema_name='Author', "
            "schema_description='Paper author', field_names=['name'], "
            "field_descriptions=['The full name'])",
        ],
    )
