"""The ``@tool()`` decorator, tool specs, and the tool registry.

"The Archytas agent will read tool code as natural language, and consider its
doc-string and input/output parameters in order to decide whether to use it
to satisfy the user requests. ... The general docstring of a tool summarizes
what each tool accomplishes and when it is appropriate to use.  The Args
section of the docstring can be used to describe the input and output
arguments expected for each tool." (§2.3)
"""

from __future__ import annotations

import asyncio
import inspect
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence


class ToolError(Exception):
    """Invalid tool definition or invocation."""


class AgentRef:
    """Annotation marker: a tool parameter that receives the running agent.

    Parameters annotated ``AgentRef`` are invisible to the reasoning model
    and are injected by the loop (Fig. 2's ``agent: AgentRef``).
    """


@dataclass(frozen=True)
class ToolParameter:
    """One model-visible input of a tool."""

    name: str
    type_name: str
    description: str = ""
    required: bool = True
    default: Any = None


@dataclass
class ToolSpec:
    """The natural-language contract the reasoning model sees."""

    name: str
    summary: str
    parameters: List[ToolParameter] = field(default_factory=list)
    returns: str = ""
    examples: List[str] = field(default_factory=list)

    def render(self) -> str:
        """One tool's block in the agent prompt."""
        params = ", ".join(
            p.name if p.required else f"{p.name}={p.default!r}"
            for p in self.parameters
        )
        lines = [f"- {self.name}({params}): {self.summary}"]
        for p in self.parameters:
            if p.description:
                lines.append(f"    {p.name} ({p.type_name}): {p.description}")
        if self.returns:
            lines.append(f"    returns: {self.returns}")
        for example in self.examples:
            lines.append(f"    example: {example}")
        return "\n".join(lines)


_ARGS_SECTION_RE = re.compile(
    r"^\s*(Args|Arguments|Parameters)\s*:\s*$", re.M
)
_RETURNS_SECTION_RE = re.compile(r"^\s*Returns?\s*:\s*$", re.M)
_EXAMPLES_SECTION_RE = re.compile(r"^\s*Examples?\s*:\s*$", re.M)
_PARAM_LINE_RE = re.compile(
    r"^\s*(\w+)\s*(?:\(([^)]*)\))?\s*:\s*(.+)$"
)


def _split_sections(docstring: str) -> Dict[str, str]:
    """Split a docstring into summary/args/returns/examples sections."""
    sections = {"summary": "", "args": "", "returns": "", "examples": ""}
    markers = []
    for name, pattern in (
        ("args", _ARGS_SECTION_RE),
        ("returns", _RETURNS_SECTION_RE),
        ("examples", _EXAMPLES_SECTION_RE),
    ):
        match = pattern.search(docstring)
        if match:
            markers.append((match.start(), match.end(), name))
    markers.sort()
    if not markers:
        sections["summary"] = docstring.strip()
        return sections
    sections["summary"] = docstring[: markers[0][0]].strip()
    for index, (start, end, name) in enumerate(markers):
        stop = markers[index + 1][0] if index + 1 < len(markers) else len(docstring)
        sections[name] = docstring[end:stop].strip()
    return sections


def _annotation_name(annotation: Any) -> str:
    if annotation is inspect.Parameter.empty:
        return "any"
    if annotation is AgentRef or (
        isinstance(annotation, type) and issubclass(annotation, AgentRef)
    ):
        return "AgentRef"
    return getattr(annotation, "__name__", str(annotation))


def _parse_spec(fn: Callable, name: Optional[str]) -> ToolSpec:
    docstring = inspect.getdoc(fn) or ""
    if not docstring.strip():
        raise ToolError(
            f"tool {fn.__name__!r} needs a docstring: the reasoning agent "
            "reads it to decide when to use the tool"
        )
    sections = _split_sections(docstring)
    arg_docs: Dict[str, str] = {}
    for line in sections["args"].splitlines():
        match = _PARAM_LINE_RE.match(line)
        if match:
            arg_docs[match.group(1)] = match.group(3).strip()

    signature = inspect.signature(fn)
    parameters: List[ToolParameter] = []
    for param in signature.parameters.values():
        if param.name in ("self", "cls"):
            continue
        if _annotation_name(param.annotation) == "AgentRef":
            continue  # injected by the loop, not model-visible
        parameters.append(
            ToolParameter(
                name=param.name,
                type_name=_annotation_name(param.annotation),
                description=arg_docs.get(param.name, ""),
                required=param.default is inspect.Parameter.empty,
                default=(
                    None
                    if param.default is inspect.Parameter.empty
                    else param.default
                ),
            )
        )
    examples = [
        line.strip()
        for line in sections["examples"].splitlines()
        if line.strip()
    ]
    return ToolSpec(
        name=name or fn.__name__,
        summary=sections["summary"],
        parameters=parameters,
        returns=sections["returns"],
        examples=examples,
    )


class Tool:
    """A callable plus its model-facing spec."""

    def __init__(self, fn: Callable, spec: ToolSpec):
        self.fn = fn
        self.spec = spec
        self._signature = inspect.signature(fn)
        self._agent_params = [
            p.name
            for p in self._signature.parameters.values()
            if _annotation_name(p.annotation) == "AgentRef"
        ]

    @property
    def name(self) -> str:
        return self.spec.name

    def validate_arguments(self, arguments: Dict[str, Any]) -> None:
        known = {p.name for p in self.spec.parameters}
        unexpected = sorted(set(arguments) - known)
        if unexpected:
            raise ToolError(
                f"tool {self.name!r} got unexpected arguments {unexpected}; "
                f"expected {sorted(known)}"
            )
        missing = sorted(
            p.name
            for p in self.spec.parameters
            if p.required and p.name not in arguments
        )
        if missing:
            raise ToolError(
                f"tool {self.name!r} is missing required arguments {missing}"
            )

    def invoke(self, arguments: Dict[str, Any], agent: Any = None) -> Any:
        """Call the tool, injecting the agent into AgentRef parameters.

        Async tools (the paper's tools are ``async def``) are driven to
        completion with a private event loop.
        """
        self.validate_arguments(arguments)
        call_args = dict(arguments)
        for param_name in self._agent_params:
            call_args[param_name] = agent
        result = self.fn(**call_args)
        if inspect.iscoroutine(result):
            result = asyncio.new_event_loop().run_until_complete(result)
        return result

    def __repr__(self) -> str:
        return f"Tool({self.name!r})"


def tool(name: Optional[str] = None) -> Callable[[Callable], Tool]:
    """Decorator: turn a documented function into an agent tool.

    >>> @tool()
    ... def add(a: int, b: int) -> int:
    ...     '''Add two integers.
    ...
    ...     Args:
    ...         a: first addend
    ...         b: second addend
    ...     '''
    ...     return a + b
    >>> add.spec.name
    'add'
    """

    def decorate(fn: Callable) -> Tool:
        return Tool(fn, _parse_spec(fn, name))

    return decorate


class ToolRegistry:
    """The set of tools an agent can reach."""

    def __init__(self, tools: Optional[Sequence[Tool]] = None):
        self._tools: Dict[str, Tool] = {}
        for t in tools or []:
            self.register(t)

    def register(self, tool_obj: Tool, overwrite: bool = False) -> None:
        if not isinstance(tool_obj, Tool):
            raise ToolError(
                f"expected a Tool (did you forget @tool()?); got "
                f"{type(tool_obj).__name__}"
            )
        if tool_obj.name in self._tools and not overwrite:
            raise ToolError(f"tool {tool_obj.name!r} is already registered")
        self._tools[tool_obj.name] = tool_obj

    def get(self, name: str) -> Tool:
        try:
            return self._tools[name]
        except KeyError:
            raise ToolError(
                f"unknown tool {name!r}; available: {sorted(self._tools)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._tools

    def __len__(self) -> int:
        return len(self._tools)

    def names(self) -> List[str]:
        return sorted(self._tools)

    def render_block(self) -> str:
        """All tool specs, as the agent prompt's tools section."""
        return "\n".join(
            self._tools[name].spec.render() for name in sorted(self._tools)
        )
