"""Archytas reproduction: a ReAct agent toolbox.

"Archytas is a toolbox for enabling LLM agents to interact with various tools
in order to solve tasks more effectively, following the ReAct (Reason &
Action) paradigm. ... By implementing ReAct, an agent can decompose a user
request into smaller steps, decide which tools to invoke for each step,
provide corresponding input to those tools, and iterate until the task is
complete." (§2.2)

Pieces:

* :mod:`repro.agent.templating` — the ``{{variable}}`` injection syntax used
  inside tool code (Fig. 2).
* :mod:`repro.agent.tools` — the ``@tool()`` decorator, docstring-driven tool
  specs, and the tool registry.
* :mod:`repro.agent.react` — the Thought -> Action -> Observation loop, agent
  traces, and pluggable "brains" (the reasoning policy).
"""

from repro.agent.templating import render_template, TemplateError
from repro.agent.tools import (
    tool,
    Tool,
    ToolSpec,
    ToolParameter,
    ToolRegistry,
    ToolError,
    AgentRef,
)
from repro.agent.code_tools import (
    CodeTool,
    CodeInvocation,
    code_tool,
    fig2_create_schema_tool,
)
from repro.agent.react import (
    ReActAgent,
    AgentResult,
    AgentStep,
    AgentTrace,
    Brain,
    Decision,
    ToolCall,
    FinalAnswer,
    ScriptedBrain,
)

__all__ = [
    "render_template",
    "TemplateError",
    "tool",
    "Tool",
    "ToolSpec",
    "ToolParameter",
    "ToolRegistry",
    "ToolError",
    "AgentRef",
    "CodeTool",
    "CodeInvocation",
    "code_tool",
    "fig2_create_schema_tool",
    "ReActAgent",
    "AgentResult",
    "AgentStep",
    "AgentTrace",
    "Brain",
    "Decision",
    "ToolCall",
    "FinalAnswer",
    "ScriptedBrain",
]
