"""The ReAct loop: Thought -> Action -> Observation, iterated.

The *brain* — the reasoning policy that decides what to do next — is
pluggable.  PalimpChat uses the deterministic intent engine in
:mod:`repro.chat.intent`; tests use :class:`ScriptedBrain`.  Either way the
loop is the same: the brain sees the user message, the tool specs, and the
scratchpad of previous steps, and returns either a :class:`ToolCall` or a
:class:`FinalAnswer`.

When a model card is attached, every reasoning step is metered as a simulated
LLM call over the actual agent prompt (system + tools block + scratchpad), so
chat-driven pipelines account for their agent overhead too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro.agent.tools import Tool, ToolError, ToolRegistry
from repro.llm.client import CompletionRequest, SimulatedLLMClient
from repro.llm.clock import VirtualClock
from repro.llm.models import ModelCard
from repro.llm.prompts import build_agent_prompt
from repro.llm.usage import UsageLedger
from repro.obs.trace import NULL_TRACER, SpanKind

DEFAULT_SYSTEM_PROMPT = (
    "You are a helpful reasoning agent. Decompose the user's request into "
    "steps, choosing a tool for each step, and produce a final answer when "
    "the request is satisfied."
)


@dataclass(frozen=True)
class ToolCall:
    """Brain decision: invoke a tool."""

    thought: str
    tool_name: str
    arguments: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class FinalAnswer:
    """Brain decision: stop and answer the user."""

    thought: str
    answer: str


Decision = Union[ToolCall, FinalAnswer]


@dataclass(frozen=True)
class AgentStep:
    """One entry of an agent trace."""

    kind: str  # "thought" | "action" | "observation" | "final" | "error"
    content: str
    tool_name: Optional[str] = None
    arguments: Optional[Dict[str, Any]] = None


@dataclass
class AgentTrace:
    """The full Thought/Action/Observation record of one agent run."""

    steps: List[AgentStep] = field(default_factory=list)

    def append(self, step: AgentStep) -> None:
        self.steps.append(step)

    def tool_calls(self) -> List[AgentStep]:
        return [s for s in self.steps if s.kind == "action"]

    def tool_sequence(self) -> List[str]:
        """The ordered tool names invoked (the Fig. 4 decomposition)."""
        return [s.tool_name for s in self.tool_calls() if s.tool_name]

    def scratchpad(self) -> str:
        lines = []
        for step in self.steps:
            if step.kind == "thought":
                lines.append(f"Thought: {step.content}")
            elif step.kind == "action":
                lines.append(f"Action: {step.tool_name}({step.arguments})")
            elif step.kind == "observation":
                lines.append(f"Observation: {step.content}")
            elif step.kind == "error":
                lines.append(f"Observation (error): {step.content}")
            elif step.kind == "final":
                lines.append(f"Final Answer: {step.content}")
        return "\n".join(lines)


@dataclass
class AgentResult:
    """What :meth:`ReActAgent.run` returns."""

    answer: str
    trace: AgentTrace
    steps_used: int
    succeeded: bool


@dataclass
class BrainContext:
    """Everything a brain sees when deciding the next step."""

    user_message: str
    registry: ToolRegistry
    trace: AgentTrace
    state: Dict[str, Any]
    last_observation: Optional[str] = None


class Brain:
    """Reasoning policy interface."""

    def decide(self, context: BrainContext) -> Decision:
        raise NotImplementedError


class ScriptedBrain(Brain):
    """Replays a fixed list of decisions (for tests and demos)."""

    def __init__(self, decisions: List[Decision]):
        self._decisions = list(decisions)
        self._cursor = 0

    def decide(self, context: BrainContext) -> Decision:
        if self._cursor >= len(self._decisions):
            return FinalAnswer(
                thought="script exhausted", answer="(no further steps)"
            )
        decision = self._decisions[self._cursor]
        self._cursor += 1
        return decision


class ReActAgent:
    """Runs the ReAct loop over a tool registry with a pluggable brain.

    Args:
        registry: the tools available to the agent.
        brain: the reasoning policy.
        model: if given, each reasoning step is metered as a simulated call.
        clock, ledger: accounting sinks for the metered reasoning calls.
        max_steps: hard cap on tool invocations per run.
        system_prompt: preamble of the metered agent prompt.
        tracer: observability tracer; each run becomes an ``agent.run``
            span with ``agent.step`` children wrapping the Thought /
            Action / Observation cycle and ``tool.invoke`` spans around
            tool execution.
    """

    def __init__(
        self,
        registry: ToolRegistry,
        brain: Brain,
        model: Optional[ModelCard] = None,
        clock: Optional[VirtualClock] = None,
        ledger: Optional[UsageLedger] = None,
        max_steps: int = 12,
        system_prompt: str = DEFAULT_SYSTEM_PROMPT,
        tracer=None,
    ):
        if max_steps < 1:
            raise ValueError(f"max_steps must be >= 1, got {max_steps}")
        self.registry = registry
        self.brain = brain
        self.max_steps = max_steps
        self.system_prompt = system_prompt
        self.clock = clock
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._reasoning_client: Optional[SimulatedLLMClient] = None
        if model is not None:
            if not model.supports_reasoning:
                raise ValueError(
                    f"model {model.name!r} is not reasoning-capable; "
                    "pick a card with supports_reasoning=True"
                )
            self._reasoning_client = SimulatedLLMClient(
                model, clock=clock, ledger=ledger, tracer=self.tracer
            )

    def _meter_step(self, user_message: str, trace: AgentTrace) -> None:
        if self._reasoning_client is None:
            return
        prompt = build_agent_prompt(
            self.system_prompt,
            self.registry.render_block(),
            trace.scratchpad(),
            user_message,
        )
        self._reasoning_client.complete(
            CompletionRequest(prompt=prompt, operation="agent")
        )

    def run(self, user_message: str,
            state: Optional[Dict[str, Any]] = None) -> AgentResult:
        """Process one user request to completion (or to the step cap)."""
        trace = AgentTrace()
        state = state if state is not None else {}
        last_observation: Optional[str] = None
        tracer = self.tracer

        with tracer.span(
            "agent.run", SpanKind.AGENT, clock=self.clock,
            max_steps=self.max_steps,
        ) as run_span:
            for step_number in range(self.max_steps):
                with tracer.span(
                    "agent.step", SpanKind.AGENT, clock=self.clock,
                    step=step_number,
                ):
                    self._meter_step(user_message, trace)
                    decision = self.brain.decide(
                        BrainContext(
                            user_message=user_message,
                            registry=self.registry,
                            trace=trace,
                            state=state,
                            last_observation=last_observation,
                        )
                    )
                    trace.append(
                        AgentStep(kind="thought", content=decision.thought)
                    )
                    if tracer.enabled:
                        tracer.event(
                            "agent.thought", SpanKind.AGENT,
                            clock=self.clock,
                            chars=len(decision.thought),
                        )

                    if isinstance(decision, FinalAnswer):
                        trace.append(
                            AgentStep(kind="final", content=decision.answer)
                        )
                        if tracer.enabled:
                            run_span.set_attribute(
                                "steps_used", step_number + 1
                            )
                            run_span.set_attribute("succeeded", True)
                        return AgentResult(
                            answer=decision.answer,
                            trace=trace,
                            steps_used=step_number + 1,
                            succeeded=True,
                        )

                    trace.append(
                        AgentStep(
                            kind="action",
                            content=decision.thought,
                            tool_name=decision.tool_name,
                            arguments=dict(decision.arguments),
                        )
                    )
                    try:
                        tool_obj = self.registry.get(decision.tool_name)
                        with tracer.span(
                            "tool.invoke", SpanKind.TOOL, clock=self.clock,
                            tool=decision.tool_name,
                        ):
                            result = tool_obj.invoke(
                                decision.arguments, agent=self
                            )
                        last_observation = str(result)
                        trace.append(
                            AgentStep(
                                kind="observation", content=last_observation
                            )
                        )
                        if tracer.enabled:
                            tracer.event(
                                "agent.observation", SpanKind.AGENT,
                                clock=self.clock,
                                chars=len(last_observation),
                            )
                    except ToolError as exc:
                        last_observation = f"tool error: {exc}"
                        trace.append(
                            AgentStep(kind="error", content=last_observation)
                        )
                        if tracer.enabled:
                            tracer.event(
                                "agent.error", SpanKind.AGENT,
                                clock=self.clock,
                                tool=decision.tool_name,
                            )
                    except Exception as exc:  # tools are user code; stay alive
                        last_observation = f"{type(exc).__name__}: {exc}"
                        trace.append(
                            AgentStep(kind="error", content=last_observation)
                        )
                        if tracer.enabled:
                            tracer.event(
                                "agent.error", SpanKind.AGENT,
                                clock=self.clock,
                                tool=decision.tool_name,
                            )

            if tracer.enabled:
                run_span.set_attribute("steps_used", self.max_steps)
                run_span.set_attribute("succeeded", False)
        return AgentResult(
            answer=(
                "I could not complete the request within "
                f"{self.max_steps} steps."
            ),
            trace=trace,
            steps_used=self.max_steps,
            succeeded=False,
        )
