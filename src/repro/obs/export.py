"""Trace exporters: Chrome ``trace_event`` JSON and plain JSON.

The Chrome format loads in ``about://tracing`` / Perfetto: one complete
``"X"`` event per span with microsecond timestamps, ``pid`` 0, and the
virtual-clock *lane* as ``tid`` so the timeline rows mirror the lanes the
:class:`~repro.llm.clock.VirtualClock` charged.  Lane 0 is the
orchestrator / sequential lane; lanes 1..N are workers.

The plain-JSON format is the canonical tree serialization
(``Trace.to_dict`` plus metadata) used by tooling that wants parent/child
structure without reconstructing it from timestamps.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.trace import Trace

_MICROS = 1_000_000


def _lane_label(lane: int) -> str:
    return "lane 0 (orchestrator)" if lane == 0 else f"lane {lane} (worker)"


def to_chrome_trace(trace: Trace,
                    metrics: Optional[Dict[str, Any]] = None
                    ) -> Dict[str, Any]:
    """Render a finalized trace as a Chrome ``trace_event`` JSON object."""
    events: List[Dict[str, Any]] = []
    lanes = sorted({span.lane for span in trace.spans})
    for lane in lanes:
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": lane,
            "args": {"name": _lane_label(lane)},
        })
    for span in trace.spans:
        args: Dict[str, Any] = {
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "kind": span.kind,
        }
        args.update(span.attributes)
        events.append({
            "name": span.name,
            "cat": span.kind,
            "ph": "X",
            "ts": round(span.start * _MICROS, 3),
            "dur": round(span.duration * _MICROS, 3),
            "pid": 0,
            "tid": span.lane,
            "args": args,
        })
    other_data: Dict[str, Any] = {"span_count": len(trace)}
    if metrics:
        other_data["metrics"] = metrics
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other_data,
    }


def to_plain_json(trace: Trace,
                  metrics: Optional[Dict[str, Any]] = None
                  ) -> Dict[str, Any]:
    """Render a finalized trace as plain JSON (flat span list with ids)."""
    payload = {
        "format": "repro.obs/v1",
        "makespan_seconds": round(trace.makespan, 9),
        "span_count": len(trace),
        "spans": [span.to_dict() for span in trace.spans],
    }
    if metrics:
        payload["metrics"] = metrics
    return payload


def write_chrome_trace(trace: Trace, path: str,
                       metrics: Optional[Dict[str, Any]] = None) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome_trace(trace, metrics=metrics), handle, indent=2)
        handle.write("\n")


def write_plain_json(trace: Trace, path: str,
                     metrics: Optional[Dict[str, Any]] = None) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_plain_json(trace, metrics=metrics), handle, indent=2)
        handle.write("\n")
