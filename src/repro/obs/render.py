"""Text renderers: an indented span tree and an aggregated flame view.

Both render from a finalized :class:`~repro.obs.trace.Trace` and print
virtual-clock seconds, so output is deterministic and diff-able in tests
and CI logs.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.obs.trace import Span, Trace

_BAR_WIDTH = 24


def _format_attrs(span: Span, keys: Tuple[str, ...]) -> str:
    parts = []
    for key in keys:
        if key in span.attributes:
            parts.append(f"{key}={span.attributes[key]}")
    return f" [{' '.join(parts)}]" if parts else ""


def render_tree(trace: Trace, max_depth: int = 0,
                max_children: int = 12) -> str:
    """Indented tree: one line per span with duration, lane, key attrs.

    ``max_depth`` of 0 means unlimited; sibling lists longer than
    ``max_children`` are collapsed with an elision line so huge
    per-record fan-outs stay readable.
    """
    lines: List[str] = []

    def walk(span: Span, depth: int) -> None:
        indent = "  " * depth
        attrs = _format_attrs(
            span, ("op", "model", "tool", "intent", "stage", "seq"))
        lines.append(
            f"{indent}{span.name} ({span.kind}) "
            f"{span.duration:.4f}s lane={span.lane}{attrs}"
        )
        if max_depth and depth + 1 >= max_depth:
            if span.children:
                lines.append(f"{indent}  ... {len(span.children)} "
                             "child span(s) below max depth")
            return
        shown = span.children[:max_children] if max_children else \
            span.children
        for child in shown:
            walk(child, depth + 1)
        hidden = len(span.children) - len(shown)
        if hidden > 0:
            lines.append(f"{indent}  ... {hidden} more sibling span(s)")

    for root in trace.roots:
        walk(root, 0)
    if not lines:
        return "(empty trace)"
    return "\n".join(lines)


def render_flame(trace: Trace, width: int = _BAR_WIDTH) -> str:
    """Aggregated flame view: self time summed by span *path*.

    Each line is ``root;child;...`` with total self time and a bar scaled
    to the largest entry — the text analogue of a flame graph, aggregated
    so a thousand identical per-record spans collapse into one row.
    """
    totals: Dict[str, float] = {}
    counts: Dict[str, int] = {}

    def walk(span: Span, prefix: str) -> None:
        path = f"{prefix};{span.name}" if prefix else span.name
        totals[path] = totals.get(path, 0.0) + span.self_time()
        counts[path] = counts.get(path, 0) + 1
        for child in span.children:
            walk(child, path)

    for root in trace.roots:
        walk(root, "")
    rows = [(path, total) for path, total in totals.items() if total > 0]
    if not rows:
        return "(no timed spans)"
    rows.sort(key=lambda row: (-row[1], row[0]))
    peak = rows[0][1]
    lines = []
    for path, total in rows:
        bar = "#" * max(1, int(round(width * total / peak)))
        lines.append(
            f"{total:>10.4f}s x{counts[path]:<5} {bar:<{width}} {path}"
        )
    return "\n".join(lines)
