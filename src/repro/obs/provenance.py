"""Record-level provenance: who produced each record, and why.

During execution every physical operator reports its record-level
derivations to a :class:`ProvenanceRecorder` hanging off the execution
context:

- **emit** events: parent record(s) -> child record(s), with the LLM
  calls (model, tokens, cost, cache hits) that paid for the hop;
- **drop** events: a record eliminated by an operator, with a reason
  from the :class:`DropReason` enum and the evidence (judge verdict,
  limit position, similarity score, ...).

Like traces (``repro.obs.trace``), the raw event log is
interleaving-dependent under the pipelined executor — worker threads
race, and ``DataRecord._record_id`` values depend on allocation order.
A **canonical finalization pass** fixes both: roots are ordered by
(origin, arrival), then each operator's events are sorted by their
(already-canonical) parent ids, and canonical ids are assigned in that
order.  The resulting :class:`ProvenanceGraph` is byte-identical across
executors, worker counts, and batch sizes (``ProvenanceGraph.signature``
pins this in ``tests/test_provenance_determinism.py``).

On top of the graph sit the two explanation queries PalimpChat exposes:

- :meth:`ProvenanceGraph.why` — the full derivation tree of an output
  record (every hop, with per-hop LLM cost);
- :meth:`ProvenanceGraph.why_not` — the fate of a source record that is
  *not* in the output: the exact op, reason, and verdict that
  eliminated it (or the fold/derivation trail if it survives in
  aggregate form).

Everything defaults to the shared :data:`NULL_PROVENANCE` no-op so the
hot path pays a single attribute check when provenance is off.
"""

from __future__ import annotations

import hashlib
import json
import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "DropReason",
    "DROP_REASONS",
    "ProvenanceError",
    "ProvenanceRecorder",
    "ProvenanceGraph",
    "NULL_PROVENANCE",
    "render_why",
    "render_why_not",
]

_PREVIEW_CHARS = 120


class ProvenanceError(RuntimeError):
    """An operator reported an event the recorder cannot reconcile."""


class DropReason:
    """Why a record left the pipeline.  Values are stable strings."""

    FILTER_REJECTED = "filter_rejected"
    LIMIT_CUTOFF = "limit_cutoff"
    JOIN_NO_MATCH = "join_no_match"
    AGGREGATE_FOLD = "aggregate_fold"
    RETRIEVE_CUTOFF = "retrieve_cutoff"
    DISTINCT_DUPLICATE = "distinct_duplicate"
    CONVERT_EMPTY = "convert_empty"


#: Every legal drop reason; validators (scripts/validate_trace.py) and
#: pz-lint OB402 check event reasons against this set.
DROP_REASONS = frozenset(
    value
    for name, value in vars(DropReason).items()
    if not name.startswith("_")
)


def _llm_summary(usages: Optional[Sequence[Any]]) -> Optional[Dict[str, Any]]:
    """Collapse LLM usage records into batch-invariant attributes.

    Tokens, cost, and cache hits are identical whether calls ran
    per-record or batched; **latency is not** (it amortizes across a
    batch), so it is deliberately excluded — including it would break
    graph byte-identity across batch sizes.
    """
    if not usages:
        return None
    cache_hits = sum(1 for u in usages if u.operation.endswith(":cached"))
    return {
        "models": ",".join(sorted({u.model for u in usages})),
        "calls": len(usages),
        "input_tokens": sum(u.input_tokens for u in usages),
        "output_tokens": sum(u.output_tokens for u in usages),
        "cost_usd": round(sum(u.cost_usd for u in usages), 9),
        "cache_hits": cache_hits,
        "operations": ",".join(sorted({u.operation for u in usages})),
    }


class _NullProvenance:
    """Shared no-op recorder: provenance disabled at zero cost."""

    __slots__ = ()
    enabled = False

    def begin_plan(self, plan) -> None:
        pass

    def source(self, record, origin: str = "scan") -> None:
        pass

    def emit(self, op, parents, children, llm=None, **attrs) -> None:
        pass

    def drop(self, op, record, reason, llm=None, **attrs) -> None:
        pass

    @contextmanager
    def suspended(self):
        yield

    def __repr__(self) -> str:  # pragma: no cover
        return "NULL_PROVENANCE"


NULL_PROVENANCE = _NullProvenance()


class ProvenanceRecorder:
    """Collects raw derivation events during one plan execution.

    Thread-safe: pipelined workers report concurrently.  The recorder
    holds strong references to the :class:`DataRecord` objects it sees
    so runtime ids stay unique for the lifetime of the run (``id()``
    reuse after garbage collection would corrupt the graph).

    ``suspended()`` turns recording off for the current thread — used
    around nested executions (join/union right-side materialization runs
    a nested optimizer + executor in the *same* context) whose internal
    events must not pollute the outer graph.
    """

    _GUARDED_BY = {
        "_op_index": "_lock",
        "_op_labels": "_lock",
        "_records": "_lock",
        "_roots": "_lock",
        "_origin_counts": "_lock",
        "_events": "_lock",
    }

    def __init__(self):
        self._lock = threading.Lock()
        self._op_index: Dict[int, int] = {}
        self._op_labels: List[str] = []
        self._records: Dict[int, Any] = {}
        self._roots: List[Tuple[str, int, int]] = []  # (origin, arrival, rid)
        self._origin_counts: Dict[str, int] = {}
        self._events: List[Dict[str, Any]] = []
        self._local = threading.local()

    # -- recording state ------------------------------------------------

    @property
    def enabled(self) -> bool:
        """False while the current thread is inside :meth:`suspended`."""
        return getattr(self._local, "suspend", 0) == 0

    @contextmanager
    def suspended(self):
        self._local.suspend = getattr(self._local, "suspend", 0) + 1
        try:
            yield
        finally:
            self._local.suspend -= 1

    # -- event intake ---------------------------------------------------

    def begin_plan(self, plan) -> None:
        """Register the plan's operators; events name ops by plan index."""
        if not self.enabled:
            return
        with self._lock:
            for op in plan:
                if id(op) in self._op_index:
                    continue
                self._op_index[id(op)] = len(self._op_labels)
                self._op_labels.append(op.op_label)

    def source(self, record, origin: str = "scan") -> None:
        """Register a graph root (scanned or right-side materialized)."""
        if not self.enabled:
            return
        with self._lock:
            rid = record.record_id
            if rid in self._records:
                return
            self._records[rid] = record
            arrival = self._origin_counts.get(origin, 0)
            self._origin_counts[origin] = arrival + 1
            self._roots.append((origin, arrival, rid))

    def emit(self, op, parents, children, llm=None, **attrs) -> None:
        """Record a derivation: ``parents`` produced ``children`` at ``op``.

        A *pass-through* (children is parents — e.g. a kept filter
        record) attaches evidence to the record's journey without
        creating a new node.  ``llm`` is the list of ``LLMUsage``
        records the hop consumed.
        """
        if not self.enabled:
            return
        self._record_event(op, "emit", None, parents, children, llm, attrs)

    def drop(self, op, record, reason, llm=None, **attrs) -> None:
        """Record an elimination: ``record`` left the pipeline at ``op``."""
        if not self.enabled:
            return
        if reason not in DROP_REASONS:
            raise ProvenanceError(f"unknown drop reason {reason!r}")
        self._record_event(op, "drop", reason, [record], [], llm, attrs)

    def _record_event(self, op, kind, reason, parents, children, llm,
                      attrs) -> None:
        with self._lock:
            op_idx = self._op_index.get(id(op))
            if op_idx is None:
                raise ProvenanceError(
                    f"operator {op.op_label!r} was never registered via "
                    "begin_plan(); provenance events would be orphaned"
                )
            for record in parents:
                self._records.setdefault(record.record_id, record)
            for record in children:
                self._records.setdefault(record.record_id, record)
            self._events.append({
                "op": op_idx,
                "kind": kind,
                "reason": reason,
                "parents": [r.record_id for r in parents],
                "children": [r.record_id for r in children],
                "llm": _llm_summary(llm),
                "attrs": dict(attrs),
            })

    # -- finalization ---------------------------------------------------

    def finalize(self, outputs: Iterable[Any]) -> "ProvenanceGraph":
        """Canonicalize the event log into a :class:`ProvenanceGraph`.

        Deterministic regardless of thread interleaving: roots are
        ordered by (origin, arrival index), then each operator's events
        (ascending plan index) are sorted by their canonical parent
        ids + kind + reason + attributes, and canonical ids are handed
        out in exactly that order.
        """
        with self._lock:
            rid_to_cid: Dict[int, int] = {}
            nodes: List[Dict[str, Any]] = []

            def add_node(rid: int, origin: str) -> int:
                record = self._records[rid]
                cid = len(nodes) + 1
                rid_to_cid[rid] = cid
                payload = record.to_json()
                nodes.append({
                    "id": cid,
                    "source_id": record.source_id,
                    "schema": record.schema.schema_name(),
                    "origin": origin,
                    "preview": payload[:_PREVIEW_CHARS],
                    "fp": hashlib.sha256(
                        payload.encode("utf-8")).hexdigest()[:16],
                })
                return cid

            for origin, arrival, rid in sorted(
                    self._roots, key=lambda r: (r[0], r[1])):
                add_node(rid, origin)

            by_op: Dict[int, List[Dict[str, Any]]] = {}
            for event in self._events:
                by_op.setdefault(event["op"], []).append(event)

            canonical_events: List[Dict[str, Any]] = []
            for op_idx in sorted(by_op):
                prepared = []
                for event in by_op[op_idx]:
                    attrs = dict(event["attrs"])
                    # duplicate_of names another record by *runtime* id;
                    # rewrite to the canonical id before sorting on it.
                    dup = attrs.get("duplicate_of")
                    if dup is not None:
                        if dup not in rid_to_cid:
                            raise ProvenanceError(
                                "duplicate_of references a record with no "
                                "canonical id yet")
                        attrs["duplicate_of"] = rid_to_cid[dup]
                    try:
                        parent_cids = [rid_to_cid[rid]
                                       for rid in event["parents"]]
                    except KeyError:
                        raise ProvenanceError(
                            f"event at op {self._op_labels[op_idx]!r} has a "
                            "parent with no provenance; was the scan "
                            "registered via source()?") from None
                    key = (
                        tuple(sorted(parent_cids)),
                        0 if event["kind"] == "emit" else 1,
                        event["reason"] or "",
                        json.dumps(attrs, default=str, sort_keys=True),
                    )
                    prepared.append((key, event, attrs, parent_cids))
                prepared.sort(key=lambda item: item[0])
                for _, event, attrs, parent_cids in prepared:
                    child_cids = []
                    for rid in event["children"]:
                        cid = rid_to_cid.get(rid)
                        if cid is None:
                            cid = add_node(rid, "derived")
                        child_cids.append(cid)
                    canonical_events.append({
                        "op": event["op"],
                        "op_label": self._op_labels[event["op"]],
                        "kind": event["kind"],
                        "reason": event["reason"],
                        "parents": parent_cids,
                        "children": child_cids,
                        "llm": event["llm"],
                        "attrs": attrs,
                    })

            output_ids = []
            for record in outputs:
                cid = rid_to_cid.get(record.record_id)
                if cid is None:
                    # A plan with no event-reporting ops (pure scan)
                    # still has its outputs as roots; anything else
                    # missing is a wiring bug.
                    raise ProvenanceError(
                        "output record has no provenance node; an operator "
                        "emitted it without reporting the derivation")
                output_ids.append(cid)

            graph = ProvenanceGraph(
                ops=list(self._op_labels),
                nodes=nodes,
                events=canonical_events,
                output_ids=output_ids,
            )
            graph._rid_to_cid = dict(rid_to_cid)
            return graph


class ProvenanceGraph:
    """The canonical record-derivation DAG for one run.

    Serializable (``to_dict``/``from_dict``/``to_json``) and hashable
    (``signature``).  ``why``/``why_not`` answer the two PalimpChat
    explanation questions purely from the canonical form, so their
    results are byte-identical wherever the graph is.
    """

    def __init__(self, ops: List[str], nodes: List[Dict[str, Any]],
                 events: List[Dict[str, Any]], output_ids: List[int]):
        self.ops = ops
        self.nodes = nodes
        self.events = events
        self.output_ids = output_ids
        self._rid_to_cid: Dict[int, int] = {}

    # -- serialization --------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ops": self.ops,
            "nodes": self.nodes,
            "events": self.events,
            "output_ids": self.output_ids,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ProvenanceGraph":
        return cls(
            ops=list(payload["ops"]),
            nodes=list(payload["nodes"]),
            events=list(payload["events"]),
            output_ids=list(payload["output_ids"]),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), default=str, sort_keys=True)

    def signature(self) -> str:
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        return (
            f"ProvenanceGraph(nodes={len(self.nodes)}, "
            f"events={len(self.events)}, outputs={len(self.output_ids)})"
        )

    # -- lookups --------------------------------------------------------

    def canonical_id(self, record) -> Optional[int]:
        """Canonical id of an in-memory record from the producing run."""
        return self._rid_to_cid.get(record.record_id)

    def node(self, node_id: int) -> Dict[str, Any]:
        if not 1 <= node_id <= len(self.nodes):
            raise ProvenanceError(
                f"no record {node_id} in this provenance graph "
                f"(ids run 1..{len(self.nodes)})")
        return self.nodes[node_id - 1]

    def roots(self) -> List[Dict[str, Any]]:
        return [n for n in self.nodes if n["origin"] != "derived"]

    def find_sources(self, source_id: str) -> List[Dict[str, Any]]:
        """Root nodes matching ``source_id``.

        Tries an exact source-id match, then source-id containment, then
        content-preview containment (datasets often share one source id,
        so "why not paper_003?" matches on the scanned filename/content).
        """
        exact = [n for n in self.roots() if n["source_id"] == source_id]
        if exact:
            return exact
        contained = [
            n for n in self.roots()
            if n["source_id"] and source_id in n["source_id"]
        ]
        if contained:
            return contained
        return [n for n in self.roots() if source_id in n["preview"]]

    def _producing_event(self, node_id: int) -> Optional[Dict[str, Any]]:
        for event in self.events:
            if node_id in event["children"] and node_id not in event["parents"]:
                return event
        return None

    def _journey(self, node_id: int) -> List[Dict[str, Any]]:
        """Pass-through events the record survived, in plan order."""
        return [
            e for e in self.events
            if node_id in e["parents"] and node_id in e["children"]
        ]

    # -- why ------------------------------------------------------------

    def why(self, record_id: int, _depth: int = 0) -> Dict[str, Any]:
        """Full derivation tree of ``record_id`` (a canonical node id).

        Each level reports the node, the event that produced it (with
        per-hop LLM cost), the pass-through hops it survived, and the
        recursively-explained parents.  Roots report their origin
        instead of a producing event.
        """
        node = self.node(record_id)
        produced = self._producing_event(record_id)
        parents = []
        if produced is not None:
            seen = set()
            for pid in produced["parents"]:
                if pid in seen:
                    continue
                seen.add(pid)
                parents.append(self.why(pid, _depth + 1))
        return {
            "id": node["id"],
            "source_id": node["source_id"],
            "schema": node["schema"],
            "origin": node["origin"],
            "preview": node["preview"],
            "in_output": node["id"] in self.output_ids,
            "produced_by": _event_view(produced),
            "hops": [_event_view(e) for e in self._journey(record_id)],
            "parents": parents,
        }

    # -- why not --------------------------------------------------------

    def why_not(self, source_id: str) -> Dict[str, Any]:
        """Explain the fate of every source record matching ``source_id``.

        For each matching root: ``in_output`` if it survived verbatim,
        ``dropped`` with the eliminating event (op, reason, verdict),
        ``folded`` when an aggregate consumed it (both the fold event
        and the aggregate output's own fate are reported), or
        ``derived`` with the fates of its children.
        """
        matches = self.find_sources(source_id)
        return {
            "source_id": source_id,
            "matches": len(matches),
            "fates": [self._fate(n["id"]) for n in matches],
        }

    def _fate(self, node_id: int, _seen: Optional[set] = None) -> Dict[str, Any]:
        seen = _seen if _seen is not None else set()
        node = self.node(node_id)
        base = {
            "id": node["id"],
            "source_id": node["source_id"],
            "schema": node["schema"],
            "journey": [_event_view(e) for e in self._journey(node_id)],
        }
        if node_id in seen:
            base["status"] = "cycle"
            return base
        seen.add(node_id)
        if node_id in self.output_ids:
            base["status"] = "in_output"
            return base
        drops = [
            e for e in self.events
            if e["kind"] == "drop" and node_id in e["parents"]
        ]
        derives = [
            e for e in self.events
            if e["kind"] == "emit" and node_id in e["parents"]
            and node_id not in e["children"]
        ]
        if drops and derives:
            # An aggregate folded it in *and* produced an output record.
            base["status"] = "folded"
            base["dropped_by"] = _event_view(drops[0])
            base["children"] = [
                self._fate(cid, seen)
                for e in derives for cid in e["children"]
            ]
            return base
        if drops:
            base["status"] = "dropped"
            base["dropped_by"] = _event_view(drops[0])
            return base
        if derives:
            base["status"] = "derived"
            base["children"] = [
                self._fate(cid, seen)
                for e in derives for cid in e["children"]
            ]
            return base
        base["status"] = "dangling"
        return base


def _event_view(event: Optional[Dict[str, Any]]) -> Optional[Dict[str, Any]]:
    """The stable, user-facing projection of a canonical event."""
    if event is None:
        return None
    view = {
        "op": event["op"],
        "op_label": event["op_label"],
        "kind": event["kind"],
    }
    if event["reason"]:
        view["reason"] = event["reason"]
    if event["attrs"]:
        view["attrs"] = dict(sorted(event["attrs"].items()))
    if event["llm"]:
        view["llm"] = event["llm"]
    return view


# -- rendering ----------------------------------------------------------


def _format_event(view: Optional[Dict[str, Any]]) -> str:
    if view is None:
        return "source"
    parts = [view["op_label"]]
    if view.get("reason"):
        parts.append(f"reason={view['reason']}")
    for key, value in (view.get("attrs") or {}).items():
        parts.append(f"{key}={value}")
    llm = view.get("llm")
    if llm:
        parts.append(
            f"llm[{llm['calls']} call(s), {llm['models']}, "
            f"${llm['cost_usd']:.6f}, {llm['cache_hits']} cached]"
        )
    return " ".join(parts)


def render_why(tree: Dict[str, Any], indent: int = 0) -> str:
    """Human-readable derivation tree from :meth:`ProvenanceGraph.why`."""
    pad = "  " * indent
    lines = [
        f"{pad}record #{tree['id']} [{tree['schema']}] "
        f"source={tree['source_id']!r}"
        + (" (in output)" if tree["in_output"] and indent == 0 else "")
    ]
    lines.append(f"{pad}  produced by: {_format_event(tree['produced_by'])}")
    for hop in tree["hops"]:
        lines.append(f"{pad}  survived: {_format_event(hop)}")
    for parent in tree["parents"]:
        lines.append(f"{pad}  from:")
        lines.append(render_why(parent, indent + 2))
    return "\n".join(lines)


def _render_fate(fate: Dict[str, Any], indent: int = 0) -> List[str]:
    pad = "  " * indent
    lines = [
        f"{pad}record #{fate['id']} [{fate['schema']}] "
        f"source={fate['source_id']!r}: {fate['status']}"
    ]
    for hop in fate["journey"]:
        lines.append(f"{pad}  survived: {_format_event(hop)}")
    if fate.get("dropped_by"):
        lines.append(
            f"{pad}  eliminated by: {_format_event(fate['dropped_by'])}")
    for child in fate.get("children", []):
        lines.append(f"{pad}  became:")
        lines.extend(_render_fate(child, indent + 2))
    return lines


def render_why_not(result: Dict[str, Any]) -> str:
    """Human-readable fates from :meth:`ProvenanceGraph.why_not`."""
    if not result["matches"]:
        return (
            f"no source record matching {result['source_id']!r} "
            "was scanned in this run"
        )
    lines = [
        f"{result['matches']} source record(s) match "
        f"{result['source_id']!r}:"
    ]
    for fate in result["fates"]:
        lines.extend(_render_fate(fate, 1))
    return "\n".join(lines)
