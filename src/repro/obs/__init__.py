"""``repro.obs`` — end-to-end observability for the reproduction.

The paper's chat layer reports per-operator cost, runtime, and quality
statistics after execution; this package generalizes that reporting into a
proper observability subsystem:

* :mod:`repro.obs.trace` — :class:`Tracer` / :class:`Span` /
  :class:`TraceStore`: nested spans timed by the :class:`VirtualClock`
  (never wall time), attributed to the same lanes the clock charges, and
  canonicalized into a deterministic :class:`Trace` tree.
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry`: counters, gauges,
  and histograms snapshotted into
  :class:`~repro.execution.stats.ExecutionStats`.
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON and plain-JSON
  trace files.
* :mod:`repro.obs.analyze` — critical-path analysis of pipelined runs and
  per-operator hotspot aggregation.
* :mod:`repro.obs.render` — text tree / flame renderers for terminals.
* :mod:`repro.obs.provenance` — record-level derivation graphs with
  ``why`` / ``why_not`` explanations, canonicalized like traces.
* :mod:`repro.obs.registry` — the persistent run registry
  (``.repro/runs/``) with list/load/diff over recorded executions.
* :mod:`repro.obs.telemetry` — the *wall-clock* operational layer for
  the service tier: request-correlated structured JSONL logs, the
  ``OpsMetrics`` registry behind ``GET /metrics``, sliding-window SLO
  evaluation, and the ``repro top`` dashboard renderer.  Strictly
  separate from the virtual-clock tracer above — it never feeds any
  deterministic artifact (records, stats, traces, provenance).

Tracing is zero-cost when disabled: every instrumented component defaults
to the shared :data:`NULL_TRACER`, whose ``span()`` is a reusable no-op
context manager, and hot paths guard attribute construction behind
``tracer.enabled``.  Two runs of the same plan at any worker count produce
identical span trees and durations — ids come from a canonical
finalization pass and times from the virtual clock.
"""

from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanKind,
    Trace,
    Tracer,
    TraceStore,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.export import (
    to_chrome_trace,
    to_plain_json,
    write_chrome_trace,
    write_plain_json,
)
from repro.obs.analyze import (
    CriticalPathReport,
    StageReport,
    aggregate_ops,
    analyze_critical_path,
)
from repro.obs.render import render_flame, render_tree
from repro.obs.provenance import (
    DROP_REASONS,
    DropReason,
    NULL_PROVENANCE,
    ProvenanceError,
    ProvenanceGraph,
    ProvenanceRecorder,
    render_why,
    render_why_not,
)
from repro.obs.registry import (
    DEFAULT_RUNS_DIR,
    ResultHandle,
    RunDiff,
    RunRegistry,
    RunSnapshot,
    diff_runs,
)
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    OpsMetrics,
    SloEvaluator,
    SloRule,
    Telemetry,
    TelemetryLog,
    bind_context,
    current_context,
    render_dashboard,
    wall_now,
    wall_perf,
)

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanKind",
    "Trace",
    "Tracer",
    "TraceStore",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "to_chrome_trace",
    "to_plain_json",
    "write_chrome_trace",
    "write_plain_json",
    "CriticalPathReport",
    "StageReport",
    "aggregate_ops",
    "analyze_critical_path",
    "render_flame",
    "render_tree",
    "DROP_REASONS",
    "DropReason",
    "NULL_PROVENANCE",
    "ProvenanceError",
    "ProvenanceGraph",
    "ProvenanceRecorder",
    "render_why",
    "render_why_not",
    "DEFAULT_RUNS_DIR",
    "ResultHandle",
    "RunDiff",
    "RunRegistry",
    "RunSnapshot",
    "diff_runs",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "OpsMetrics",
    "SloEvaluator",
    "SloRule",
    "Telemetry",
    "TelemetryLog",
    "bind_context",
    "current_context",
    "render_dashboard",
    "wall_now",
    "wall_perf",
]
