"""Trace analysis: per-operator hotspots and pipeline critical path.

``analyze_critical_path`` answers "which stage bounds this run": for a
pipelined trace it reads the ``pipeline.stage`` spans, divides each
stage's busy virtual time by its worker count to get *effective* time,
and names the stage with the largest effective time as the bound — that
is the stage whose speedup would shorten the makespan.  For sequential /
parallel traces (no stage spans) it degrades to per-operator hotspot
analysis, where the "bounding stage" is simply the most expensive
operator.

All numbers are virtual-clock seconds, so reports are deterministic and
reconcile with :class:`~repro.execution.stats.ExecutionStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.trace import SpanKind, Trace


def aggregate_ops(trace: Trace) -> Dict[str, Dict[str, Any]]:
    """Sum operator spans by op label: span count, busy seconds, records.

    Operator spans (``kind == "operator"``) carry an ``op`` attribute with
    the physical op label; their durations are the same clock deltas the
    stats meters measured, so the ``busy_seconds`` here reconcile with
    ``OperatorStats.time_seconds``.
    """
    ops: Dict[str, Dict[str, Any]] = {}
    for span in trace.spans:
        if span.kind != SpanKind.OPERATOR:
            continue
        label = str(span.attributes.get("op", span.name))
        entry = ops.setdefault(label, {
            "spans": 0,
            "busy_seconds": 0.0,
            "records_in": 0,
            "records_out": 0,
        })
        entry["spans"] += 1
        entry["busy_seconds"] += span.duration
        entry["records_in"] += int(span.attributes.get("records_in", 0))
        entry["records_out"] += int(span.attributes.get("records_out", 0))
    for entry in ops.values():
        entry["busy_seconds"] = round(entry["busy_seconds"], 9)
    return ops


@dataclass
class StageReport:
    """One pipeline stage (or one operator, in the hotspot fallback)."""

    index: int
    name: str
    workers: int = 1
    busy_seconds: float = 0.0
    idle_seconds: float = 0.0
    effective_seconds: float = 0.0
    utilization: float = 0.0
    records_out: int = 0
    is_bounding: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "name": self.name,
            "workers": self.workers,
            "busy_seconds": round(self.busy_seconds, 9),
            "idle_seconds": round(self.idle_seconds, 9),
            "effective_seconds": round(self.effective_seconds, 9),
            "utilization": round(self.utilization, 6),
            "records_out": self.records_out,
            "is_bounding": self.is_bounding,
        }


@dataclass
class CriticalPathReport:
    """Which stage bounds the run, and how busy every stage was."""

    mode: str  # "pipeline" or "hotspot"
    makespan: float
    stages: List[StageReport] = field(default_factory=list)

    @property
    def bounding_stage(self) -> Optional[StageReport]:
        for stage in self.stages:
            if stage.is_bounding:
                return stage
        return None

    def to_dict(self) -> Dict[str, Any]:
        bounding = self.bounding_stage
        return {
            "mode": self.mode,
            "makespan_seconds": round(self.makespan, 9),
            "bounding_stage": bounding.name if bounding else None,
            "stages": [stage.to_dict() for stage in self.stages],
        }

    def render(self) -> str:
        lines = []
        if self.mode == "pipeline":
            lines.append("Critical path (pipelined run)")
        else:
            lines.append("Hotspots (non-pipelined run)")
        lines.append(f"  makespan: {self.makespan:.4f}s (virtual)")
        header = (f"  {'stage':<38} {'workers':>7} {'busy_s':>10} "
                  f"{'eff_s':>10} {'util':>6}")
        lines.append(header)
        for stage in self.stages:
            marker = "  <-- bounds the run" if stage.is_bounding else ""
            lines.append(
                f"  {stage.name:<38} {stage.workers:>7} "
                f"{stage.busy_seconds:>10.4f} "
                f"{stage.effective_seconds:>10.4f} "
                f"{stage.utilization:>5.0%}{marker}"
            )
        bounding = self.bounding_stage
        if bounding is not None:
            if self.mode == "pipeline":
                lines.append(
                    f"  bounding stage: {bounding.name} — "
                    f"{bounding.busy_seconds:.4f}s busy across "
                    f"{bounding.workers} worker(s); speeding it up "
                    "shortens the makespan."
                )
            else:
                lines.append(
                    f"  hottest operator: {bounding.name} "
                    f"({bounding.busy_seconds:.4f}s busy)."
                )
        return "\n".join(lines)


def _pipeline_report(trace: Trace,
                     stage_spans: List[Any]) -> CriticalPathReport:
    makespan = trace.makespan
    stages: List[StageReport] = []
    for span in stage_spans:
        workers = max(1, int(span.attributes.get("workers", 1)))
        busy = float(span.attributes.get("busy_seconds", span.duration))
        capacity = workers * makespan
        stages.append(StageReport(
            index=int(span.attributes.get("stage", len(stages))),
            name=str(span.attributes.get("ops", span.name)),
            workers=workers,
            busy_seconds=busy,
            idle_seconds=max(0.0, capacity - busy),
            effective_seconds=busy / workers,
            utilization=(busy / capacity) if capacity > 0 else 0.0,
            records_out=int(span.attributes.get("records_out", 0)),
        ))
    stages.sort(key=lambda s: s.index)
    if stages:
        bound = max(stages, key=lambda s: (s.effective_seconds, -s.index))
        bound.is_bounding = True
    return CriticalPathReport(mode="pipeline", makespan=makespan,
                              stages=stages)


def _hotspot_report(trace: Trace) -> CriticalPathReport:
    makespan = trace.makespan
    stages: List[StageReport] = []
    for index, (label, entry) in enumerate(aggregate_ops(trace).items()):
        busy = entry["busy_seconds"]
        stages.append(StageReport(
            index=index,
            name=label,
            workers=1,
            busy_seconds=busy,
            idle_seconds=max(0.0, makespan - busy),
            effective_seconds=busy,
            utilization=(busy / makespan) if makespan > 0 else 0.0,
            records_out=entry["records_out"],
        ))
    stages.sort(key=lambda s: (-s.busy_seconds, s.name))
    for index, stage in enumerate(stages):
        stage.index = index
    if stages:
        stages[0].is_bounding = True
    return CriticalPathReport(mode="hotspot", makespan=makespan,
                              stages=stages)


def analyze_critical_path(trace: Trace) -> CriticalPathReport:
    """Build the critical-path (or hotspot fallback) report for a trace."""
    stage_spans = trace.find("pipeline.stage")
    if stage_spans:
        return _pipeline_report(trace, stage_spans)
    return _hotspot_report(trace)
