"""Persistent run registry: record, list, load, and diff executions.

Every recorded run lands in its own directory under ``.repro/runs/``::

    .repro/runs/run-0001/
        meta.json         # plan signature, policy, executor, headline totals
        stats.json        # full ExecutionStats.to_dict()
        records.json      # output records (schema-shaped dicts, sink order)
        provenance.json   # canonical ProvenanceGraph (when recorded)
        trace.json        # plain-JSON trace (when traced)

Run ids are sequential (``run-0001``, ``run-0002``, ...) rather than
timestamps so a registry populated by a deterministic script is itself
deterministic.

:func:`diff_runs` compares two snapshots and names three kinds of delta:

1. **plan** — did the optimizer choose a different physical plan
   (plan id + the operator labels added/removed)?
2. **per-op stats** — cost / busy time / LLM calls / selectivity deltas
   for operators present in both runs;
3. **record membership** — output records that appeared or disappeared,
   each *explained*: appearances via the new run's
   :meth:`~repro.obs.provenance.ProvenanceGraph.why`, disappearances by
   tracing the old record to its source documents and asking the new
   run's :meth:`~repro.obs.provenance.ProvenanceGraph.why_not`.
"""

from __future__ import annotations

import hashlib
import json
import re
import shutil
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.provenance import ProvenanceGraph, render_why, render_why_not

__all__ = [
    "ResultHandle",
    "RunSnapshot",
    "RunRegistry",
    "RunDiff",
    "diff_runs",
    "DEFAULT_RUNS_DIR",
]

DEFAULT_RUNS_DIR = ".repro/runs"
_RUN_ID_RE = re.compile(r"^run-(\d+)$")


def _record_key(payload: Dict[str, Any]) -> str:
    """Canonical membership key for one output record.

    Matches ``DataRecord.to_json()`` exactly, and survives a disk
    round-trip (records are normalized through JSON before storage).
    """
    return json.dumps(payload, default=str, sort_keys=True)


def _record_fp(payload: Dict[str, Any]) -> str:
    """Same 16-hex fingerprint provenance nodes carry (``node["fp"]``)."""
    return hashlib.sha256(
        _record_key(payload).encode("utf-8")).hexdigest()[:16]


def _result_fp(payloads: List[Dict[str, Any]]) -> str:
    """Order-sensitive fingerprint of a whole result set."""
    digest = hashlib.sha256()
    for payload in payloads:
        digest.update(_record_key(payload).encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()[:16]


class ResultHandle:
    """An addressable result set: identity + shape, records on demand.

    The "results as handles, not payloads" idiom: chat and agent tools
    pass a ``result_id`` (plus schema / count / fingerprint) around
    instead of inlining record payloads, and consumers :meth:`slice` the
    window they actually display.  Workspace state stays O(1) no matter
    how large the corpus grows; the records live in the run registry.
    """

    def __init__(
        self,
        result_id: str,
        schema: str,
        count: int,
        fingerprint: str,
        loader: Callable[[], List[Dict[str, Any]]],
    ):
        self.result_id = result_id
        self.schema = schema
        self.count = count
        self.fingerprint = fingerprint
        self._loader = loader
        self._records: Optional[List[Dict[str, Any]]] = None

    @classmethod
    def from_snapshot(cls, snapshot: "RunSnapshot") -> "ResultHandle":
        records = snapshot.records
        return cls(
            result_id=snapshot.run_id,
            schema=str(snapshot.meta.get("schema", "")),
            count=len(records),
            fingerprint=str(
                snapshot.meta.get("result_fp") or _result_fp(records)
            ),
            loader=lambda: records,
        )

    def records(self) -> List[Dict[str, Any]]:
        """The full result set (loaded lazily, cached)."""
        if self._records is None:
            self._records = list(self._loader())
        return self._records

    def slice(self, offset: int = 0,
              limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """A window of the result set (the on-demand access path)."""
        if offset < 0:
            raise ValueError(f"offset must be >= 0, got {offset}")
        if limit is not None and limit < 0:
            raise ValueError(f"limit must be >= 0, got {limit}")
        records = self.records()
        if limit is None:
            return records[offset:]
        return records[offset:offset + limit]

    def to_dict(self) -> Dict[str, Any]:
        """The reference payload tools pass around (no records)."""
        return {
            "result_id": self.result_id,
            "schema": self.schema,
            "count": self.count,
            "fingerprint": self.fingerprint,
        }

    def describe(self) -> str:
        schema = self.schema or "<unknown schema>"
        return (
            f"result {self.result_id}: {self.count} x {schema} "
            f"[{self.fingerprint}]"
        )

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (
            f"ResultHandle(id={self.result_id!r}, schema={self.schema!r}, "
            f"count={self.count}, fp={self.fingerprint})"
        )


class RunSnapshot:
    """One recorded execution: metadata, stats, records, provenance, trace."""

    def __init__(
        self,
        run_id: str,
        meta: Dict[str, Any],
        stats: Dict[str, Any],
        records: List[Dict[str, Any]],
        graph: Optional[ProvenanceGraph] = None,
        trace: Optional[Dict[str, Any]] = None,
        manifest: Optional[Dict[str, Any]] = None,
        calls: Optional[List[Dict[str, Any]]] = None,
    ):
        self.run_id = run_id
        self.meta = meta
        self.stats = stats
        self.records = records
        self.graph = graph
        self.trace = trace
        #: Per-document source manifest (``manifest.json``) when the run
        #: captured one — the base an incremental re-run diffs against.
        self.manifest = manifest
        #: Captured LLM call log (``calls.json``) when the run captured
        #: one — what an incremental re-run replays from.
        self.calls = calls

    @classmethod
    def from_execution(cls, run_id: str, records, stats) -> "RunSnapshot":
        """Snapshot live ``(records, stats)`` from ``Execute``.

        Records are normalized through a JSON round-trip so an in-memory
        snapshot is byte-identical to one reloaded from disk.
        """
        plan = stats.plan_stats
        payloads = [json.loads(r.to_json()) for r in records]
        schema = records[0].schema.schema_name() if records else ""
        meta = {
            "run_id": run_id,
            "policy": stats.policy,
            "executor": stats.executor,
            "max_workers": stats.max_workers,
            "batch_size": stats.batch_size,
            "plan_id": plan.plan_id,
            "plan": plan.plan_describe,
            "records_out": plan.records_out,
            "schema": schema,
            "result_fp": _result_fp(payloads),
            "total_time_seconds": round(stats.total_time_seconds, 3),
            "total_cost_usd": round(stats.total_cost_usd, 6),
            "llm_calls": sum(op.llm_calls for op in plan.operator_stats),
        }
        incremental = getattr(stats, "incremental", None)
        if incremental is not None:
            meta["incremental"] = incremental.to_dict()
        trace = None
        if stats.trace is not None:
            from repro.obs.export import to_plain_json

            trace = to_plain_json(stats.trace, metrics=stats.metrics)
        return cls(
            run_id=run_id,
            meta=meta,
            stats=stats.to_dict(),
            records=payloads,
            graph=getattr(stats, "provenance", None),
            trace=trace,
            manifest=getattr(stats, "source_manifest", None),
            calls=getattr(stats, "call_log", None),
        )

    def handle(self) -> ResultHandle:
        """This run's result set as an addressable handle."""
        return ResultHandle.from_snapshot(self)

    # -- lookups --------------------------------------------------------

    def record_keys(self) -> Dict[str, Dict[str, Any]]:
        """Membership key -> record payload, for diffing."""
        return {_record_key(p): p for p in self.records}

    def output_node_for(self, payload: Dict[str, Any]) -> Optional[int]:
        """The provenance node id of an output record, matched by
        content fingerprint (duplicates resolve to the first match)."""
        if self.graph is None:
            return None
        fp = _record_fp(payload)
        for node_id in self.graph.output_ids:
            if self.graph.node(node_id)["fp"] == fp:
                return node_id
        return None

    def source_ids_for(self, payload: Dict[str, Any]) -> List[str]:
        """Source document ids an output record derives from."""
        node_id = self.output_node_for(payload)
        if node_id is None:
            source = payload.get("filename") or payload.get("source_id")
            return [source] if source else []
        tree = self.graph.why(node_id)
        found: List[str] = []

        def walk(level):
            if not level["parents"]:
                if level["source_id"] and level["source_id"] not in found:
                    found.append(level["source_id"])
            for parent in level["parents"]:
                walk(parent)

        walk(tree)
        return found


class RunRegistry:
    """Directory-backed registry of :class:`RunSnapshot` objects."""

    def __init__(self, root: str = DEFAULT_RUNS_DIR):
        self.root = Path(root)

    # -- recording ------------------------------------------------------

    def next_run_id(self) -> str:
        highest = 0
        if self.root.is_dir():
            for entry in self.root.iterdir():
                match = _RUN_ID_RE.match(entry.name)
                if match:
                    highest = max(highest, int(match.group(1)))
        return f"run-{highest + 1:04d}"

    def record(self, records, stats,
               run_id: Optional[str] = None) -> RunSnapshot:
        """Persist one execution; returns the stored snapshot."""
        run_id = run_id or self.next_run_id()
        snapshot = RunSnapshot.from_execution(run_id, records, stats)
        self.save(snapshot)
        return snapshot

    def save(self, snapshot: RunSnapshot) -> Path:
        run_dir = self.root / snapshot.run_id
        run_dir.mkdir(parents=True, exist_ok=True)

        def dump(name: str, payload: Any) -> None:
            path = run_dir / name
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True,
                          default=str)
                handle.write("\n")

        dump("meta.json", snapshot.meta)
        dump("stats.json", snapshot.stats)
        dump("records.json", snapshot.records)
        if snapshot.graph is not None:
            dump("provenance.json", snapshot.graph.to_dict())
        if snapshot.trace is not None:
            dump("trace.json", snapshot.trace)
        if snapshot.manifest is not None:
            dump("manifest.json", snapshot.manifest)
        if snapshot.calls is not None:
            dump("calls.json", snapshot.calls)
        return run_dir

    # -- retrieval ------------------------------------------------------

    def list(self) -> List[Dict[str, Any]]:
        """Metadata of every stored run, ascending by run id."""
        rows = []
        if not self.root.is_dir():
            return rows
        for entry in sorted(self.root.iterdir(), key=lambda p: p.name):
            meta_path = entry / "meta.json"
            if _RUN_ID_RE.match(entry.name) and meta_path.is_file():
                with open(meta_path, encoding="utf-8") as handle:
                    rows.append(json.load(handle))
        return rows

    def load(self, run_id: str) -> RunSnapshot:
        run_dir = self.root / run_id
        if not (run_dir / "meta.json").is_file():
            known = ", ".join(m["run_id"] for m in self.list()) or "<none>"
            raise FileNotFoundError(
                f"no recorded run {run_id!r} under {self.root}; "
                f"known runs: {known}")

        def read(name: str) -> Any:
            path = run_dir / name
            if not path.is_file():
                return None
            with open(path, encoding="utf-8") as handle:
                return json.load(handle)

        graph_payload = read("provenance.json")
        return RunSnapshot(
            run_id=run_id,
            meta=read("meta.json"),
            stats=read("stats.json") or {},
            records=read("records.json") or [],
            graph=(ProvenanceGraph.from_dict(graph_payload)
                   if graph_payload else None),
            trace=read("trace.json"),
            manifest=read("manifest.json"),
            calls=read("calls.json"),
        )

    def handle(self, run_id: str) -> ResultHandle:
        """A :class:`ResultHandle` over a stored run, loading records
        lazily — metadata comes from ``meta.json`` alone, so producing
        the handle never touches ``records.json``."""
        run_dir = self.root / run_id
        meta_path = run_dir / "meta.json"
        if not meta_path.is_file():
            known = ", ".join(m["run_id"] for m in self.list()) or "<none>"
            raise FileNotFoundError(
                f"no recorded run {run_id!r} under {self.root}; "
                f"known runs: {known}")
        with open(meta_path, encoding="utf-8") as handle:
            meta = json.load(handle)

        def load_records() -> List[Dict[str, Any]]:
            path = run_dir / "records.json"
            if not path.is_file():
                return []
            with open(path, encoding="utf-8") as records_handle:
                return json.load(records_handle)

        fingerprint = meta.get("result_fp")
        if not fingerprint:
            fingerprint = _result_fp(load_records())
        return ResultHandle(
            result_id=run_id,
            schema=str(meta.get("schema", "")),
            count=int(meta.get("records_out", 0)),
            fingerprint=str(fingerprint),
            loader=load_records,
        )

    def latest(self, before: Optional[str] = None) -> Optional[str]:
        """Most recent run id (optionally the most recent one < before)."""
        ids = [m["run_id"] for m in self.list()]
        if before is not None:
            ids = [i for i in ids if i < before]
        return ids[-1] if ids else None

    def diff(self, run_a: str, run_b: str) -> "RunDiff":
        return diff_runs(self.load(run_a), self.load(run_b))

    # -- retention ------------------------------------------------------

    def size_bytes(self) -> int:
        """Total bytes stored under the registry root."""
        if not self.root.is_dir():
            return 0
        return sum(
            path.stat().st_size
            for path in self.root.rglob("*") if path.is_file()
        )

    def prune(self, keep_last: Optional[int] = None,
              max_bytes: Optional[int] = None) -> List[str]:
        """Delete old runs; returns the pruned run ids (oldest first).

        ``keep_last`` retains only the N most recent runs.  ``max_bytes``
        then drops the oldest remaining runs until the registry fits the
        budget (the newest run always survives).  Run ids keep counting
        upward after a prune: :meth:`next_run_id` scans the directory, so
        reusing a deleted id would require deleting the newest runs too.
        """
        if keep_last is not None and keep_last < 0:
            raise ValueError(f"keep_last must be >= 0, got {keep_last}")
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        ids = [m["run_id"] for m in self.list()]
        doomed: List[str] = []
        if keep_last is not None and len(ids) > keep_last:
            cut = len(ids) - keep_last
            doomed.extend(ids[:cut])
            ids = ids[cut:]
        if max_bytes is not None:
            remaining = self.size_bytes() - sum(
                self._run_size(run_id) for run_id in doomed
            )
            while len(ids) > 1 and remaining > max_bytes:
                run_id = ids.pop(0)
                remaining -= self._run_size(run_id)
                doomed.append(run_id)
        for run_id in doomed:
            shutil.rmtree(self.root / run_id, ignore_errors=True)
        return doomed

    def _run_size(self, run_id: str) -> int:
        run_dir = self.root / run_id
        if not run_dir.is_dir():
            return 0
        return sum(
            path.stat().st_size
            for path in run_dir.rglob("*") if path.is_file()
        )


class RunDiff:
    """Structured comparison of two runs; ``render()`` is the CLI view."""

    def __init__(self, payload: Dict[str, Any]):
        self.payload = payload

    def to_dict(self) -> Dict[str, Any]:
        return self.payload

    def to_json(self) -> str:
        return json.dumps(self.payload, default=str, sort_keys=True)

    @property
    def plan_changed(self) -> bool:
        return self.payload["plan"]["changed"]

    def render(self) -> str:
        p = self.payload
        a, b = p["runs"]["a"], p["runs"]["b"]
        lines = [f"=== Run diff: {a} -> {b} ==="]

        plan = p["plan"]
        if plan["changed"]:
            lines.append(
                f"plan: CHANGED  {plan['a']['plan_id']} -> "
                f"{plan['b']['plan_id']}")
            lines.append(f"  was: {plan['a']['describe']}")
            lines.append(f"  now: {plan['b']['describe']}")
            for label in plan["removed_ops"]:
                lines.append(f"  - removed op: {label}")
            for label in plan["added_ops"]:
                lines.append(f"  + added op:   {label}")
        else:
            lines.append(f"plan: unchanged ({plan['a']['plan_id']})")

        totals = p["totals"]
        lines.append(
            "totals: records {:+d}, cost {:+.6f} USD, time {:+.3f} s".format(
                totals["records_out"], totals["cost_usd"],
                totals["time_seconds"]))

        if p["ops"]:
            lines.append("per-operator deltas (shared ops):")
            header = (
                f"  {'operator':<38} {'Δcost($)':>10} {'Δtime(s)':>10} "
                f"{'Δcalls':>7} {'Δselect':>8}")
            lines.append(header)
            for row in p["ops"]:
                d = row["delta"]
                lines.append(
                    f"  {row['op_label']:<38} {d['cost_usd']:>+10.4f} "
                    f"{d['time_seconds']:>+10.3f} {d['llm_calls']:>+7d} "
                    f"{d['selectivity']:>+8.3f}")

        membership = p["membership"]
        lines.append(
            f"records: {len(membership['appeared'])} appeared, "
            f"{len(membership['disappeared'])} disappeared, "
            f"{membership['common']} common")
        for entry in membership["appeared"]:
            lines.append(f"  + appeared: {entry['preview']}")
            if entry.get("why"):
                lines.append(_indent(entry["why"], "      "))
        for entry in membership["disappeared"]:
            lines.append(f"  - disappeared: {entry['preview']}")
            if entry.get("why_not"):
                lines.append(_indent(entry["why_not"], "      "))
        return "\n".join(lines)


def _indent(text: str, pad: str) -> str:
    return "\n".join(pad + line for line in text.splitlines())


def _op_rows(stats: Dict[str, Any]) -> List[Dict[str, Any]]:
    return (stats.get("plan") or {}).get("operators") or []


def _selectivity(row: Dict[str, Any]) -> float:
    records_in = row.get("records_in", 0)
    if not records_in:
        return 1.0
    return row.get("records_out", 0) / records_in


def diff_runs(a: RunSnapshot, b: RunSnapshot) -> RunDiff:
    """Compare two snapshots; see the module docstring for the deltas."""
    # -- plan delta -----------------------------------------------------
    ops_a = [row["operator"] for row in _op_rows(a.stats)]
    ops_b = [row["operator"] for row in _op_rows(b.stats)]
    plan = {
        "changed": a.meta.get("plan_id") != b.meta.get("plan_id"),
        "a": {"plan_id": a.meta.get("plan_id"),
              "describe": a.meta.get("plan")},
        "b": {"plan_id": b.meta.get("plan_id"),
              "describe": b.meta.get("plan")},
        "added_ops": [label for label in ops_b if label not in ops_a],
        "removed_ops": [label for label in ops_a if label not in ops_b],
    }

    # -- per-op stat deltas --------------------------------------------
    rows_a = {row["operator"]: row for row in _op_rows(a.stats)}
    rows_b = {row["operator"]: row for row in _op_rows(b.stats)}
    op_deltas = []
    for label in [l for l in ops_b if l in rows_a]:
        ra, rb = rows_a[label], rows_b[label]
        delta = {
            "cost_usd": round(
                rb.get("cost_usd", 0.0) - ra.get("cost_usd", 0.0), 6),
            "time_seconds": round(
                rb.get("time_seconds", 0.0) - ra.get("time_seconds", 0.0),
                3),
            "llm_calls": rb.get("llm_calls", 0) - ra.get("llm_calls", 0),
            "selectivity": round(_selectivity(rb) - _selectivity(ra), 3),
        }
        op_deltas.append({"op_label": label, "a": ra, "b": rb,
                          "delta": delta})

    totals = {
        "records_out": (b.meta.get("records_out", 0)
                        - a.meta.get("records_out", 0)),
        "cost_usd": round(b.meta.get("total_cost_usd", 0.0)
                          - a.meta.get("total_cost_usd", 0.0), 6),
        "time_seconds": round(b.meta.get("total_time_seconds", 0.0)
                              - a.meta.get("total_time_seconds", 0.0), 3),
    }

    # -- record membership ---------------------------------------------
    keys_a = a.record_keys()
    keys_b = b.record_keys()
    appeared = []
    for key in keys_b:
        if key in keys_a:
            continue
        payload = keys_b[key]
        entry: Dict[str, Any] = {
            "preview": key[:100],
            "fp": _record_fp(payload),
        }
        node_id = b.output_node_for(payload)
        if node_id is not None:
            entry["why"] = render_why(b.graph.why(node_id))
        appeared.append(entry)
    disappeared = []
    for key in keys_a:
        if key in keys_b:
            continue
        payload = keys_a[key]
        entry = {
            "preview": key[:100],
            "fp": _record_fp(payload),
        }
        sources = a.source_ids_for(payload)
        entry["sources"] = sources
        if b.graph is not None and sources:
            explanations = [
                render_why_not(b.graph.why_not(source))
                for source in sources
            ]
            entry["why_not"] = "\n".join(explanations)
        disappeared.append(entry)

    payload = {
        "runs": {"a": a.run_id, "b": b.run_id},
        "plan": plan,
        "ops": op_deltas,
        "totals": totals,
        "membership": {
            "appeared": appeared,
            "disappeared": disappeared,
            "common": len(set(keys_a) & set(keys_b)),
        },
    }
    return RunDiff(payload)
