"""Tracing core: spans, the tracer, and the deterministic trace tree.

Design constraints, in order of importance:

1. **Deterministic.**  Two runs of the same plan — at any worker count, on
   any thread interleaving — must produce identical span trees and
   durations.  All timestamps therefore come from the
   :class:`~repro.llm.clock.VirtualClock` (never wall time), spans are
   attributed to the clock *lane* that was charged (not the OS thread that
   happened to run), and span ids are assigned by a canonical finalization
   pass over the finished tree rather than by a racy live counter.
   Siblings that carry a ``seq`` attribute (pipeline bundles) are ordered
   by it; everything else keeps its single-threaded append order.
2. **Zero-cost when disabled.**  The shared :data:`NULL_TRACER` answers
   ``span()`` with one reusable no-op context manager and reports
   ``enabled = False`` so hot paths can skip building attribute dicts.
3. **Reconcilable.**  Operator spans are created by the same meters that
   build :class:`~repro.execution.stats.OperatorStats`, timed by the same
   clock deltas, so per-span durations sum to the per-operator times the
   stats report.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterator, List, Optional

_SEQ_MISSING = float("inf")


class SpanKind:
    """Span taxonomy (the ``kind`` vocabulary; see docs/observability.md)."""

    CHAT = "chat"
    AGENT = "agent"
    TOOL = "tool"
    OPTIMIZE = "optimize"
    PLAN = "plan"
    STAGE = "stage"
    BUNDLE = "bundle"
    OPERATOR = "operator"
    LLM = "llm"
    INTERNAL = "internal"


class Span:
    """One timed, attributed node of a trace tree.

    ``start`` / ``end`` are virtual-clock seconds; ``lane`` is the clock
    lane the work was charged to; ``span_id`` / ``parent_id`` are assigned
    when the tree is finalized into a :class:`Trace`.
    """

    __slots__ = (
        "name", "kind", "start", "end", "lane",
        "attributes", "children", "span_id", "parent_id",
    )

    def __init__(self, name: str, kind: str = SpanKind.INTERNAL,
                 start: float = 0.0, end: Optional[float] = None,
                 lane: int = 0,
                 attributes: Optional[Dict[str, Any]] = None):
        self.name = name
        self.kind = kind
        self.start = start
        self.end = end
        self.lane = lane
        self.attributes: Dict[str, Any] = attributes or {}
        self.children: List["Span"] = []
        self.span_id: int = 0
        self.parent_id: int = 0

    @property
    def duration(self) -> float:
        if self.end is None:
            return 0.0
        return max(0.0, self.end - self.start)

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def finish_at(self, end: float) -> None:
        """Pin the span's end time explicitly (e.g. to the run makespan).

        A span whose end is already set is left alone by the context
        manager's exit, so this wins over the default ``clock.now`` read.
        """
        self.end = end

    def self_time(self) -> float:
        """Duration not covered by child spans (clamped at zero)."""
        return max(
            0.0, self.duration - sum(c.duration for c in self.children)
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "start": round(self.start, 9),
            "duration": round(self.duration, 9),
            "lane": self.lane,
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:
        return (
            f"<Span {self.name} kind={self.kind} "
            f"dur={self.duration:.4f}s children={len(self.children)}>"
        )


def _canonical_order(children: List[Span]) -> List[Span]:
    """Deterministic sibling order: by ``seq`` attribute where present
    (pipeline bundles are appended by racing worker threads), otherwise
    stable append order (single-threaded sections are already ordered)."""
    return sorted(
        children,
        key=lambda span: _seq_key(span.attributes.get("seq")),
    )


def _seq_key(seq: Any) -> float:
    if isinstance(seq, (int, float)) and not isinstance(seq, bool):
        return float(seq)
    return _SEQ_MISSING


class Trace:
    """A finalized, canonically ordered, id-assigned span tree.

    Building a ``Trace`` sorts every sibling list deterministically and
    assigns depth-first span ids starting at 1, so the same run always
    serializes to the same bytes regardless of thread interleavings.
    """

    def __init__(self, roots: List[Span]):
        self.roots = _canonical_order(list(roots))
        self._spans: List[Span] = []
        counter = 0
        stack = [(root, 0) for root in reversed(self.roots)]
        while stack:
            span, parent_id = stack.pop()
            counter += 1
            span.span_id = counter
            span.parent_id = parent_id
            span.children = _canonical_order(span.children)
            self._spans.append(span)
            for child in reversed(span.children):
                stack.append((child, counter))

    @property
    def spans(self) -> List[Span]:
        """Every span, depth-first in canonical order."""
        return self._spans

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    def find(self, name: str) -> List[Span]:
        return [span for span in self._spans if span.name == name]

    def first(self, name: str) -> Optional[Span]:
        for span in self._spans:
            if span.name == name:
                return span
        return None

    @property
    def makespan(self) -> float:
        """Latest end time across all spans (virtual seconds)."""
        return max((span.end or 0.0) for span in self._spans) if self._spans \
            else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {"spans": [span.to_dict() for span in self._spans]}

    def signature(self) -> str:
        """A canonical one-line-per-span serialization (determinism tests
        compare two runs' signatures byte for byte)."""
        lines = []
        for span in self._spans:
            attrs = ",".join(
                f"{k}={span.attributes[k]!r}"
                for k in sorted(span.attributes)
            )
            lines.append(
                f"{span.span_id}|{span.parent_id}|{span.name}|{span.kind}"
                f"|{span.start:.9f}|{span.duration:.9f}|{span.lane}|{attrs}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Trace(spans={len(self._spans)}, makespan={self.makespan:.3f}s)"


class TraceStore:
    """Thread-safe accumulation of root spans for one tracer."""

    _GUARDED_BY = {"_roots": "_lock"}

    def __init__(self):
        self._roots: List[Span] = []
        self._lock = threading.Lock()

    def add_root(self, span: Span) -> None:
        with self._lock:
            self._roots.append(span)

    @property
    def roots(self) -> List[Span]:
        with self._lock:
            return list(self._roots)

    def clear(self) -> None:
        with self._lock:
            self._roots = []

    def build(self) -> Trace:
        return Trace(self.roots)

    def __len__(self) -> int:
        with self._lock:
            return len(self._roots)


class _ActiveSpan:
    """Context manager for one live span (returned by :meth:`Tracer.span`)."""

    __slots__ = ("_tracer", "_span", "_clock")

    def __init__(self, tracer: "Tracer", span: Span, clock) -> None:
        self._tracer = tracer
        self._span = span
        self._clock = clock

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._span.end is None:
            self._span.end = (
                self._clock.now if self._clock is not None
                else self._span.start
            )
        self._tracer._pop(self._span)


class _AttachedSpan:
    """Context manager that pushes an *existing* span onto this thread's
    stack without touching its times — worker threads use it to parent
    their spans under a stage span created by the orchestrator."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._pop(self._span)


class Tracer:
    """Creates spans, tracks per-thread nesting, and owns the store.

    Args:
        clock: default time source (a :class:`VirtualClock`); individual
            spans may override it — the execution layer passes its own
            context clock so traces follow whichever clock governs that
            layer.  With no clock at all, spans record zero durations but
            still carry structure and attributes.
    """

    enabled = True

    def __init__(self, clock=None):
        self.store = TraceStore()
        self.default_clock = clock
        self._local = threading.local()
        self._attach_lock = threading.Lock()

    # -- per-thread span stack --------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()

    def current_span(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    # -- span creation -----------------------------------------------------

    def _now_lane(self, clock) -> tuple:
        clock = clock if clock is not None else self.default_clock
        if clock is None:
            return 0.0, 0, None
        return clock.now, clock.current_lane, clock

    def _adopt(self, span: Span, parent: Optional[Span]) -> None:
        if parent is None:
            parent = self.current_span()
        if parent is None:
            self.store.add_root(span)
        else:
            with self._attach_lock:
                parent.children.append(span)

    def span(self, name: str, kind: str = SpanKind.INTERNAL,
             clock=None, parent: Optional[Span] = None,
             **attributes) -> _ActiveSpan:
        """Open a nested span; use as ``with tracer.span(...) as span:``.

        The parent defaults to the calling thread's innermost open span
        (falling back to a new root); pass ``parent=`` explicitly when the
        logical parent was opened on another thread.
        """
        now, lane, clock = self._now_lane(clock)
        span = Span(name, kind=kind, start=now, lane=lane,
                    attributes=attributes or None)
        self._adopt(span, parent)
        return _ActiveSpan(self, span, clock)

    def event(self, name: str, kind: str = SpanKind.INTERNAL,
              clock=None, parent: Optional[Span] = None,
              **attributes) -> Span:
        """Record a zero-duration span (a point-in-time event)."""
        now, lane, _ = self._now_lane(clock)
        span = Span(name, kind=kind, start=now, end=now, lane=lane,
                    attributes=attributes or None)
        self._adopt(span, parent)
        return span

    def record(self, name: str, kind: str, start: float, end: float,
               lane: int, parent: Optional[Span] = None,
               **attributes) -> Span:
        """Record a completed leaf span with explicit times (the simulated
        LLM client uses this: it knows the exact latency it charged)."""
        span = Span(name, kind=kind, start=start, end=end, lane=lane,
                    attributes=attributes or None)
        self._adopt(span, parent)
        return span

    def start_span(self, name: str, kind: str = SpanKind.INTERNAL,
                   clock=None, parent: Optional[Span] = None,
                   **attributes) -> Span:
        """Create and adopt a span *without* pushing it on this thread's
        stack.  Used for spans whose lifetime is owned across threads (a
        pipeline stage span): workers ``attach()`` to it, and the creator
        finishes it explicitly with :meth:`Span.finish_at`."""
        now, lane, _ = self._now_lane(clock)
        span = Span(name, kind=kind, start=now, lane=lane,
                    attributes=attributes or None)
        self._adopt(span, parent)
        return span

    def attach(self, span: Optional[Span]):
        """Parent subsequent spans of this thread under ``span``.

        ``None`` (no span was created, e.g. tracing was off when the stage
        was built) degrades to a no-op context manager.
        """
        if span is None:
            return _NULL_SPAN
        return _AttachedSpan(self, span)

    def finish(self) -> Trace:
        """Finalize everything recorded so far into a canonical tree."""
        return self.store.build()


class _NullSpan:
    """The do-nothing span: absorbs attribute writes, nests as itself."""

    __slots__ = ()

    name = ""
    kind = SpanKind.INTERNAL
    start = 0.0
    end = 0.0
    lane = 0
    duration = 0.0

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def finish_at(self, end: float) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Zero-cost tracer: every call returns the shared no-op span."""

    enabled = False
    default_clock = None

    def span(self, name: str, kind: str = SpanKind.INTERNAL,
             clock=None, parent=None, **attributes) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, kind: str = SpanKind.INTERNAL,
              clock=None, parent=None, **attributes) -> _NullSpan:
        return _NULL_SPAN

    def record(self, name: str, kind: str, start: float, end: float,
               lane: int, parent=None, **attributes) -> _NullSpan:
        return _NULL_SPAN

    def start_span(self, name: str, kind: str = SpanKind.INTERNAL,
                   clock=None, parent=None, **attributes) -> _NullSpan:
        return _NULL_SPAN

    def attach(self, span) -> _NullSpan:
        return _NULL_SPAN

    def current_span(self) -> None:
        return None

    def finish(self) -> Trace:
        return Trace([])


#: Shared process-wide disabled tracer; instrumented components default to
#: this so tracing costs nothing unless a real tracer is wired in.
NULL_TRACER = NullTracer()
