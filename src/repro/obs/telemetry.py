"""Wall-clock operational telemetry for the service tier.

Everything else in :mod:`repro.obs` is *deterministic* observability:
spans timed by the :class:`~repro.llm.clock.VirtualClock`, metrics that
are pure functions of the plan and input, byte-identical across runs.
That explains a single run to its author — it is invisible to an
operator watching the live ``repro serve`` process.  This module is the
other half: **wall-clock, aggregate, continuously exported** telemetry
for whoever runs the service.

The boundary is strict.  Operational telemetry only *observes* — it
never feeds records, stats, traces, or provenance, so a server with
telemetry on produces byte-identical artifacts to one with it off (the
zero-observer-effect pin in ``tests/test_server.py``).  Symmetrically,
engine and executor source never reads the wall clock directly: the
only sanctioned reads are :func:`wall_now` / :func:`wall_perf` here,
enforced by pz-lint rule ``OB403`` (``docs/diagnostics.md``).

Pieces (see ``docs/observability.md`` → "Operational telemetry"):

* **correlation** — :func:`bind_context` / :func:`current_context`
  carry ``request_id`` / ``tenant`` / ``session`` / ``turn`` through a
  request, including onto worker threads, so every log line and span
  tail can be joined back to its HTTP request.
* :class:`TelemetryLog` — structured JSONL event log with size-based
  rotation under ``.repro/telemetry/``.
* :class:`OpsMetrics` — labeled counters, gauges, and sliding-window
  histograms (nearest-rank p50/p95/p99, the same quantile definition as
  the deterministic :class:`~repro.obs.metrics.Histogram`), exported in
  Prometheus text format and as JSON.
* :class:`SloEvaluator` — a declarative alert-rule table evaluated over
  the sliding windows (availability, p95 turn latency, quota-rejection
  rate, worker-pool saturation); surfaced at ``GET /healthz``.
* :class:`Telemetry` — the facade the server wires through everything,
  with :data:`NULL_TELEMETRY` as the no-op off switch.
* :func:`render_dashboard` — the ``repro top`` terminal view over two
  successive ``/metrics?format=json`` payloads.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
import traceback
from collections import deque
from contextlib import contextmanager, nullcontext
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.obs.metrics import HISTOGRAM_QUANTILES, nearest_rank

__all__ = [
    "DEFAULT_TELEMETRY_ROOT",
    "DEFAULT_SLO_RULES",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "OpsCounter",
    "OpsGauge",
    "OpsMetrics",
    "OpsWindowHistogram",
    "SloEvaluator",
    "SloRule",
    "Telemetry",
    "TelemetryLog",
    "bind_context",
    "current_context",
    "render_dashboard",
    "stack_digest",
    "wall_now",
    "wall_perf",
]

DEFAULT_TELEMETRY_ROOT = ".repro/telemetry"

#: Sliding-window length every OpsMetrics histogram (and therefore every
#: SLO) is evaluated over, in wall seconds.
DEFAULT_WINDOW_SECONDS = 300.0


# ---------------------------------------------------------------------------
# Sanctioned wall-clock reads (the OB403 boundary)
# ---------------------------------------------------------------------------


def wall_now() -> float:
    """Wall-clock epoch seconds — THE sanctioned absolute-time read.

    All operational timestamps route through here; engine/executor code
    calling ``time.time()`` directly is an ``OB403`` lint error.
    """
    return time.time()  # nondet: ok(operational telemetry is wall-clock by design and never feeds deterministic artifacts)


def wall_perf() -> float:
    """Monotonic wall seconds — THE sanctioned duration-clock read."""
    return time.perf_counter()  # nondet: ok(operational latency measurement only; never feeds deterministic artifacts)


# ---------------------------------------------------------------------------
# Correlation context
# ---------------------------------------------------------------------------

_CONTEXT = threading.local()


def current_context() -> Dict[str, Any]:
    """The correlation fields bound on this thread (a copy)."""
    return dict(getattr(_CONTEXT, "fields", None) or {})


@contextmanager
def bind_context(**fields: Any) -> Iterator[Dict[str, Any]]:
    """Bind correlation fields (``request_id``/``tenant``/...) for a scope.

    Nested binds merge (inner wins); ``None`` values are dropped so
    callers can pass optional fields unconditionally.  Worker threads
    re-bind the submitting thread's context explicitly — thread-locals
    do not cross thread boundaries on their own.
    """
    previous = getattr(_CONTEXT, "fields", None)
    merged = dict(previous or {})
    merged.update(
        (key, value) for key, value in fields.items() if value is not None
    )
    _CONTEXT.fields = merged
    try:
        yield merged
    finally:
        _CONTEXT.fields = previous


def stack_digest(exc: BaseException) -> str:
    """A short stable digest of an exception's traceback.

    Log lines carry the digest rather than the full stack, so repeated
    failures with the same shape aggregate trivially (``grep digest``)
    without bloating the JSONL stream.
    """
    text = "".join(
        traceback.format_exception(type(exc), exc, exc.__traceback__)
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:12]


# ---------------------------------------------------------------------------
# Structured JSONL log with size-based rotation
# ---------------------------------------------------------------------------


class TelemetryLog:
    """Append-only JSONL event log with size-based rotation.

    One record per line: ``{"ts": ..., "event": ..., <correlation>,
    <fields>}`` — correlation fields come from :func:`current_context`
    automatically, so callers never thread request ids by hand.  Files
    are ``events-00000.jsonl``, ``events-00001.jsonl``, ... under
    ``root``; when the active file would exceed ``max_bytes`` the writer
    rolls to the next index and prunes beyond ``keep_files``.
    """

    _GUARDED_BY = {"_handle": "_lock", "_size": "_lock", "_index": "_lock"}

    def __init__(
        self,
        root,
        max_bytes: int = 1_000_000,
        keep_files: int = 5,
        clock=wall_now,
    ):
        self.root = Path(root)
        self.max_bytes = max(1024, int(max_bytes))
        self.keep_files = max(1, int(keep_files))
        self._clock = clock
        self._lock = threading.Lock()
        self._handle = None
        self._size = 0
        self.root.mkdir(parents=True, exist_ok=True)
        indices = self._indices()
        self._index = indices[-1] if indices else 0

    def _indices(self) -> List[int]:
        found = []
        for path in self.root.glob("events-*.jsonl"):
            stem = path.stem[len("events-"):]
            if stem.isdigit():
                found.append(int(stem))
        return sorted(found)

    def _path_for(self, index: int) -> Path:
        return self.root / f"events-{index:05d}.jsonl"

    @property
    def path(self) -> Path:
        """The active log file."""
        with self._lock:
            return self._path_for(self._index)

    def log(self, event: str, **fields: Any) -> None:
        """Append one event line (correlation context auto-attached)."""
        record: Dict[str, Any] = {"ts": round(self._clock(), 6),
                                  "event": event}
        record.update(current_context())
        record.update(fields)
        line = json.dumps(record, sort_keys=True, default=str) + "\n"
        data = line.encode("utf-8")
        with self._lock:
            if self._handle is None:
                path = self._path_for(self._index)
                self.root.mkdir(parents=True, exist_ok=True)
                self._handle = open(path, "ab")
                self._size = path.stat().st_size
            if self._size and self._size + len(data) > self.max_bytes:
                self._handle.close()
                self._index += 1
                self._handle = open(self._path_for(self._index), "ab")
                self._size = 0
                self._prune(self._index - self.keep_files + 1)
            self._handle.write(data)
            self._handle.flush()
            self._size += len(data)

    def _prune(self, keep_below: int) -> None:
        for index in self._indices():
            if index < keep_below:
                try:
                    self._path_for(index).unlink()
                except OSError:
                    pass

    def read_events(self) -> List[Dict[str, Any]]:
        """Every retained event, oldest first (tests and validators)."""
        events: List[Dict[str, Any]] = []
        for index in self._indices():
            path = self._path_for(index)
            if not path.is_file():
                continue
            for line in path.read_text(encoding="utf-8").splitlines():
                if line.strip():
                    events.append(json.loads(line))
        return events

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


# ---------------------------------------------------------------------------
# OpsMetrics: labeled wall-clock instruments
# ---------------------------------------------------------------------------


def _label_key(labels: Dict[str, Any]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class OpsCounter:
    """A monotonically increasing operational count."""

    __slots__ = ("_value", "_lock")

    _GUARDED_BY = {"_value": "_lock"}

    def __init__(self):
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class OpsGauge:
    """A point-in-time operational value (``add`` for in-flight +/-1)."""

    __slots__ = ("_value", "_lock")

    _GUARDED_BY = {"_value": "_lock"}

    def __init__(self):
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class OpsWindowHistogram:
    """Latency samples over a sliding wall-clock window.

    Unlike the run-scoped deterministic histogram, samples age out:
    ``summary()`` reports count/sum/min/max and nearest-rank p50/p95/p99
    over only the samples observed within ``window_seconds`` of *now* —
    the basis for the SLO evaluation and the ``repro top`` percentiles.
    """

    __slots__ = ("window_seconds", "_samples", "_clock", "_lock")

    _GUARDED_BY = {"_samples": "_lock"}

    def __init__(self, window_seconds: float = DEFAULT_WINDOW_SECONDS,
                 clock=wall_now):
        self.window_seconds = float(window_seconds)
        self._samples: deque = deque()
        self._clock = clock
        self._lock = threading.Lock()

    def observe(self, value: float, ts: Optional[float] = None) -> None:
        stamp = self._clock() if ts is None else ts
        with self._lock:
            self._samples.append((stamp, float(value)))
            self._prune_locked(stamp)

    def _prune_locked(self, now: float) -> None:
        horizon = now - self.window_seconds
        while self._samples and self._samples[0][0] < horizon:  # guarded-by: ok(only called with _lock held by observe/summary)
            self._samples.popleft()  # guarded-by: ok(only called with _lock held by observe/summary)

    def summary(self, now: Optional[float] = None) -> Dict[str, float]:
        stamp = self._clock() if now is None else now
        with self._lock:
            self._prune_locked(stamp)
            values = [value for _, value in self._samples]
        summary: Dict[str, float] = {
            "count": len(values),
            "sum": round(sum(values), 9),
            "min": min(values) if values else 0.0,
            "max": max(values) if values else 0.0,
        }
        ordered = sorted(values)
        for label, q in HISTOGRAM_QUANTILES:
            summary[label] = nearest_rank(ordered, q) if ordered else 0.0
        return summary


class OpsMetrics:
    """Creates-or-returns labeled operational instruments.

    Names are dotted lowercase paths (``http.requests_total``) like the
    deterministic registry; labels are keyword arguments
    (``counter("turns.completed_total", tenant="acme", status="ok")``).
    ``snapshot()`` is the JSON exposition; :meth:`to_prometheus` the
    text exposition (dots become underscores there).
    """

    _GUARDED_BY = {"_metrics": "_lock"}

    def __init__(self, window_seconds: float = DEFAULT_WINDOW_SECONDS,
                 clock=wall_now):
        self.window_seconds = float(window_seconds)
        self._clock = clock
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, str, Tuple[Tuple[str, str], ...]],
                            Any] = {}

    def _get_or_create(self, kind: str, name: str,
                       labels: Dict[str, Any], factory):
        key = (kind, name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = factory()
                self._metrics[key] = metric
            return metric

    def counter(self, name: str, **labels: Any) -> OpsCounter:
        return self._get_or_create("counter", name, labels, OpsCounter)

    def gauge(self, name: str, **labels: Any) -> OpsGauge:
        return self._get_or_create("gauge", name, labels, OpsGauge)

    def histogram(self, name: str, **labels: Any) -> OpsWindowHistogram:
        return self._get_or_create(
            "histogram", name, labels,
            lambda: OpsWindowHistogram(self.window_seconds, self._clock),
        )

    def _items(self) -> List[Tuple[Tuple[str, str, Tuple], Any]]:
        with self._lock:
            return sorted(self._metrics.items())

    def snapshot(self, now: Optional[float] = None) -> Dict[str, Any]:
        """JSON exposition: counters/gauges/histograms with labels."""
        out: Dict[str, List[Dict[str, Any]]] = {
            "counters": [], "gauges": [], "histograms": [],
        }
        for (kind, name, labels), metric in self._items():
            row: Dict[str, Any] = {"name": name, "labels": dict(labels)}
            if kind == "histogram":
                row["summary"] = metric.summary(now)
                out["histograms"].append(row)
            else:
                row["value"] = metric.value
                out[kind + "s"].append(row)
        return out

    def to_prometheus(self, now: Optional[float] = None) -> str:
        """Prometheus text exposition (version 0.0.4).

        Counters and gauges become single samples; sliding-window
        histograms are exported as summaries (``{quantile="0.5"}`` plus
        ``_count`` / ``_sum``) over the current window.
        """
        lines: List[str] = []
        typed: set = set()
        for (kind, name, labels), metric in self._items():
            prom = _prom_name(name)
            if (kind, prom) not in typed:
                typed.add((kind, prom))
                prom_type = ("summary" if kind == "histogram"
                             else kind)
                lines.append(f"# TYPE {prom} {prom_type}")
            label_dict = dict(labels)
            if kind == "histogram":
                summary = metric.summary(now)
                for quantile_label, q in HISTOGRAM_QUANTILES:
                    lines.append(_prom_sample(
                        prom, {**label_dict, "quantile": repr(q)},
                        summary[quantile_label]))
                lines.append(_prom_sample(
                    prom + "_count", label_dict, summary["count"]))
                lines.append(_prom_sample(
                    prom + "_sum", label_dict, summary["sum"]))
            else:
                lines.append(_prom_sample(prom, label_dict, metric.value))
        return "\n".join(lines) + ("\n" if lines else "")


def _prom_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _prom_escape(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _prom_sample(name: str, labels: Dict[str, Any], value: Any) -> str:
    if labels:
        inner = ",".join(
            f'{key}="{_prom_escape(str(val))}"'
            for key, val in sorted(labels.items())
        )
        return f"{name}{{{inner}}} {_prom_value(value)}"
    return f"{name} {_prom_value(value)}"


def _prom_value(value: Any) -> str:
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


# ---------------------------------------------------------------------------
# SLOs: a declarative alert-rule table over the sliding windows
# ---------------------------------------------------------------------------


class SloRule:
    """One service-level objective evaluated over the metrics window.

    ``kind`` picks the evaluation (and the metric read):

    * ``availability`` — mean of ``http.availability`` (1 per non-5xx
      response, 0 per 5xx); fires when it drops *below* threshold.
    * ``latency_p95`` — p95 of the aggregate ``turn.wall_seconds``
      window; fires when it rises *above* threshold seconds.
    * ``quota_rejection_rate`` — mean of ``turn.quota_outcome`` (1 per
      quota-rejected turn, 0 otherwise); fires *above* threshold.
    * ``saturation`` — count of ``pool.saturation_rejections`` in the
      window (503s from the bounded turn worker pool); fires *above*
      threshold.
    """

    KINDS = ("availability", "latency_p95", "quota_rejection_rate",
             "saturation")

    def __init__(self, name: str, kind: str, threshold: float,
                 description: str = ""):
        if kind not in self.KINDS:
            raise ValueError(
                f"unknown SLO kind {kind!r}; expected one of {self.KINDS}")
        self.name = name
        self.kind = kind
        self.threshold = float(threshold)
        self.description = description

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "threshold": self.threshold,
            "description": self.description,
        }


DEFAULT_SLO_RULES = (
    SloRule(
        "availability", "availability", 0.99,
        "fraction of HTTP responses below 500 over the window",
    ),
    SloRule(
        "turn_latency_p95", "latency_p95", 30.0,
        "p95 wall seconds per finished chat turn",
    ),
    SloRule(
        "quota_rejection_rate", "quota_rejection_rate", 0.5,
        "fraction of turns rejected or aborted on quota",
    ),
    SloRule(
        "worker_pool_saturation", "saturation", 0.0,
        "async turns bounced 503 by the saturated worker pool",
    ),
)


class SloEvaluator:
    """Evaluates the rule table against an :class:`OpsMetrics`."""

    def __init__(self, ops: OpsMetrics,
                 rules: Optional[List[SloRule]] = None):
        self.ops = ops
        self.rules = list(rules if rules is not None else DEFAULT_SLO_RULES)

    def _measure(self, rule: SloRule, now: Optional[float]) -> float:
        if rule.kind == "availability":
            summary = self.ops.histogram("http.availability").summary(now)
            if not summary["count"]:
                return 1.0
            return summary["sum"] / summary["count"]
        if rule.kind == "latency_p95":
            return self.ops.histogram("turn.wall_seconds").summary(now)["p95"]
        if rule.kind == "quota_rejection_rate":
            summary = self.ops.histogram("turn.quota_outcome").summary(now)
            if not summary["count"]:
                return 0.0
            return summary["sum"] / summary["count"]
        # saturation
        return self.ops.histogram(
            "pool.saturation_rejections").summary(now)["count"]

    def evaluate(self, now: Optional[float] = None) -> List[Dict[str, Any]]:
        """One status row per rule: the rule, its value, and ``ok``."""
        statuses = []
        for rule in self.rules:
            value = self._measure(rule, now)
            if rule.kind == "availability":
                ok = value >= rule.threshold
            else:
                ok = value <= rule.threshold
            status = rule.to_dict()
            status["value"] = round(value, 6)
            status["ok"] = ok
            statuses.append(status)
        return statuses

    def alerts(self, now: Optional[float] = None) -> List[Dict[str, Any]]:
        """The firing (not-ok) subset of :meth:`evaluate`."""
        return [row for row in self.evaluate(now) if not row["ok"]]


# ---------------------------------------------------------------------------
# The facade
# ---------------------------------------------------------------------------


class Telemetry:
    """Request ids + JSONL log + OpsMetrics + SLOs, behind one object.

    The server constructs exactly one and threads it through the HTTP
    handlers, the :class:`~repro.server.store.SessionStore`, chat
    workspaces, and the execution engine.  Everything is wall-clock and
    best-effort; nothing here may influence deterministic outputs.
    """

    _GUARDED_BY = {"_request_serial": "_lock"}

    enabled = True

    def __init__(
        self,
        root=DEFAULT_TELEMETRY_ROOT,
        slo_rules: Optional[List[SloRule]] = None,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        max_log_bytes: int = 1_000_000,
        keep_log_files: int = 5,
        clock=wall_now,
    ):
        self.root = Path(root)
        self.log = TelemetryLog(self.root, max_bytes=max_log_bytes,
                                keep_files=keep_log_files, clock=clock)
        self.ops = OpsMetrics(window_seconds=window_seconds, clock=clock)
        self.slos = SloEvaluator(self.ops, slo_rules)
        self._lock = threading.Lock()
        self._request_serial = 0
        # A per-process epoch keeps request ids unique across restarts
        # of the same telemetry root (ids are operational, never part of
        # deterministic artifacts): 40 bits of epoch-milliseconds (wraps
        # every ~35 years, not hours) plus the pid, so two processes
        # started in the same millisecond still mint distinct ids.
        self._epoch = (f"{int(clock() * 1000) & 0xFFFFFFFFFF:010x}"
                       f"-{os.getpid() & 0xFFFF:04x}")

    # -- correlation ----------------------------------------------------

    def new_request_id(self) -> str:
        with self._lock:
            self._request_serial += 1
            serial = self._request_serial
        return f"req-{self._epoch}-{serial:06d}"

    # -- logging --------------------------------------------------------

    def event(self, name: str, **fields: Any) -> None:
        """One structured log line (correlation context auto-attached)."""
        self.log.log(name, **fields)

    def error(self, name: str, exc: BaseException, **fields: Any) -> None:
        """Log an error event with type, message, and stack digest."""
        self.log.log(
            name,
            error_type=type(exc).__name__,
            error=str(exc),
            stack_digest=stack_digest(exc),
            **fields,
        )

    # -- timing ---------------------------------------------------------

    @contextmanager
    def phase(self, name: str, **fields: Any) -> Iterator[None]:
        """Time a phase into ``<name>_wall_seconds`` (tenant-labeled).

        The engine wraps optimization and execution in these; the label
        comes from the bound correlation context so the engine stays
        ignorant of tenancy.
        """
        started = wall_perf()
        try:
            yield
        finally:
            seconds = wall_perf() - started
            tenant = current_context().get("tenant")
            labels = {"tenant": tenant} if tenant else {}
            self.ops.histogram(f"{name}_wall_seconds",
                               **labels).observe(seconds)
            self.event(f"{name}_phase", seconds=round(seconds, 6), **fields)

    # -- exposition -----------------------------------------------------

    def health(self, now: Optional[float] = None) -> Dict[str, Any]:
        """The ``/healthz`` payload: ok/degraded + the SLO table."""
        slos = self.slos.evaluate(now)
        alerts = [row for row in slos if not row["ok"]]
        return {
            "status": "degraded" if alerts else "ok",
            "ok": not alerts,
            "alerts": alerts,
            "slos": slos,
        }

    def metrics_payload(self, now: Optional[float] = None) -> Dict[str, Any]:
        """The ``/metrics?format=json`` payload."""
        stamp = wall_now() if now is None else now
        health = self.health(now)
        return {
            "generated_at": round(stamp, 6),
            "window_seconds": self.ops.window_seconds,
            "status": health["status"],
            "alerts": health["alerts"],
            "slos": health["slos"],
            "metrics": self.ops.snapshot(now),
        }

    def prometheus(self, now: Optional[float] = None) -> str:
        """The ``/metrics`` text exposition, SLO verdicts included."""
        lines = [self.ops.to_prometheus(now).rstrip("\n")]
        lines.append("# TYPE repro_slo_ok gauge")
        for row in self.slos.evaluate(now):
            lines.append(_prom_sample(
                "repro_slo_ok", {"slo": row["name"]},
                1 if row["ok"] else 0))
        return "\n".join(line for line in lines if line) + "\n"

    def close(self) -> None:
        self.log.close()


class NullTelemetry:
    """The off switch: same surface, no files, no samples, no cost."""

    enabled = False

    class _NullInstrument:
        def inc(self, amount: float = 1.0) -> None:
            pass

        def set(self, value: float) -> None:
            pass

        def add(self, delta: float) -> None:
            pass

        def observe(self, value: float, ts: Optional[float] = None) -> None:
            pass

        value = 0.0

        def summary(self, now: Optional[float] = None) -> Dict[str, float]:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p95": 0.0, "p99": 0.0}

    class _NullOps:
        window_seconds = DEFAULT_WINDOW_SECONDS

        def __init__(self, instrument):
            self._instrument = instrument

        def counter(self, name: str, **labels: Any):
            return self._instrument

        def gauge(self, name: str, **labels: Any):
            return self._instrument

        def histogram(self, name: str, **labels: Any):
            return self._instrument

        def snapshot(self, now: Optional[float] = None) -> Dict[str, Any]:
            return {"counters": [], "gauges": [], "histograms": []}

        def to_prometheus(self, now: Optional[float] = None) -> str:
            return ""

    def __init__(self):
        instrument = self._NullInstrument()
        self.ops = self._NullOps(instrument)
        self.slos = SloEvaluator(None, rules=[])
        self._serial_lock = threading.Lock()
        self._serial = 0

    def new_request_id(self) -> str:
        with self._serial_lock:
            self._serial += 1
            serial = self._serial
        return f"req-off-{serial:06d}"

    def event(self, name: str, **fields: Any) -> None:
        pass

    def error(self, name: str, exc: BaseException, **fields: Any) -> None:
        pass

    def phase(self, name: str, **fields: Any):
        return nullcontext()

    def health(self, now: Optional[float] = None) -> Dict[str, Any]:
        return {"status": "ok", "ok": True, "alerts": [], "slos": []}

    def metrics_payload(self, now: Optional[float] = None) -> Dict[str, Any]:
        return {
            "generated_at": 0.0,
            "window_seconds": 0.0,
            "status": "ok",
            "alerts": [],
            "slos": [],
            "metrics": self.ops.snapshot(),
        }

    def prometheus(self, now: Optional[float] = None) -> str:
        return "# TYPE repro_slo_ok gauge\n"

    def close(self) -> None:
        pass


#: The shared no-op instance (``SessionStore(telemetry=False)``).
NULL_TELEMETRY = NullTelemetry()


# ---------------------------------------------------------------------------
# The `repro top` dashboard renderer
# ---------------------------------------------------------------------------


def _counter_by_tenant(payload: Dict[str, Any], name: str,
                       status: Optional[str] = None) -> Dict[str, float]:
    totals: Dict[str, float] = {}
    for row in payload.get("metrics", {}).get("counters", []):
        if row["name"] != name:
            continue
        labels = row.get("labels", {})
        if status is not None and labels.get("status") != status:
            continue
        tenant = labels.get("tenant", "-")
        totals[tenant] = totals.get(tenant, 0.0) + row["value"]
    return totals


def _gauge_by_tenant(payload: Dict[str, Any], name: str) -> Dict[str, float]:
    values: Dict[str, float] = {}
    for row in payload.get("metrics", {}).get("gauges", []):
        if row["name"] == name and "tenant" in row.get("labels", {}):
            values[row["labels"]["tenant"]] = row["value"]
    return values


def _histogram_by_tenant(payload: Dict[str, Any],
                         name: str) -> Dict[str, Dict[str, float]]:
    summaries: Dict[str, Dict[str, float]] = {}
    for row in payload.get("metrics", {}).get("histograms", []):
        if row["name"] == name and "tenant" in row.get("labels", {}):
            summaries[row["labels"]["tenant"]] = row["summary"]
    return summaries


def _gauge_value(payload: Dict[str, Any], name: str) -> float:
    for row in payload.get("metrics", {}).get("gauges", []):
        if row["name"] == name and not row.get("labels"):
            return row["value"]
    return 0.0


def render_dashboard(
    payload: Dict[str, Any],
    previous: Optional[Dict[str, Any]] = None,
    elapsed: Optional[float] = None,
) -> str:
    """Render one ``repro top`` frame from a ``/metrics`` JSON payload.

    ``previous``/``elapsed`` (the prior poll and the seconds since it)
    turn the monotonic turn counters into turns/s rates; without them
    the rate column shows ``-``.
    """
    turns = _counter_by_tenant(payload, "turns.completed_total")
    prev_turns = (_counter_by_tenant(previous, "turns.completed_total")
                  if previous else {})
    quota = _counter_by_tenant(payload, "quota.rejections_total")
    in_flight = _gauge_by_tenant(payload, "turns.in_flight")
    latency = _histogram_by_tenant(payload, "turn.wall_seconds")
    spent = _gauge_by_tenant(payload, "tenant.spent_cost_usd")
    caps = _gauge_by_tenant(payload, "tenant.quota_cost_usd")

    tenants = sorted(set(turns) | set(in_flight) | set(spent) | set(quota))
    status = payload.get("status", "ok")
    lines = [
        f"repro top — service {status.upper()} — "
        f"window {payload.get('window_seconds', 0):.0f}s — "
        f"{len(tenants)} tenant(s)",
        "",
        f"{'TENANT':<16} {'TURNS':>6} {'T/S':>6} {'INFL':>5} "
        f"{'P50':>8} {'P95':>8} {'P99':>8} {'QUOTA':>6} "
        f"{'SPENT$':>9} {'CAP$':>9}",
    ]
    for tenant in tenants:
        total = turns.get(tenant, 0.0)
        if previous is not None and elapsed and elapsed > 0:
            rate = (total - prev_turns.get(tenant, 0.0)) / elapsed
            rate_text = f"{rate:.2f}"
        else:
            rate_text = "-"
        summary = latency.get(tenant) or {}
        cap = caps.get(tenant)
        cap_text = f"{cap:.4f}" if cap is not None else "-"
        lines.append(
            f"{tenant:<16} {total:>6.0f} {rate_text:>6} "
            f"{in_flight.get(tenant, 0.0):>5.0f} "
            f"{summary.get('p50', 0.0):>8.3f} "
            f"{summary.get('p95', 0.0):>8.3f} "
            f"{summary.get('p99', 0.0):>8.3f} "
            f"{quota.get(tenant, 0.0):>6.0f} "
            f"{spent.get(tenant, 0.0):>9.4f} "
            f"{cap_text:>9}"
        )
    if not tenants:
        lines.append("(no tenant traffic yet)")
    lines.append("")
    pool_bits = (
        f"pool: active {_gauge_value(payload, 'pool.active'):.0f}"
        f"/{_gauge_value(payload, 'pool.workers'):.0f} workers, "
        f"queued {_gauge_value(payload, 'pool.queued'):.0f}, "
        f"saturation {_gauge_value(payload, 'pool.saturation'):.2f}"
    )
    lines.append(pool_bits)
    alerts = payload.get("alerts") or []
    if alerts:
        lines.append("")
        lines.append("ALERTS FIRING:")
        for alert in alerts:
            lines.append(
                f"  ! {alert['name']}: value {alert['value']} vs "
                f"threshold {alert['threshold']} — {alert['description']}"
            )
    else:
        lines.append("alerts: none")
    return "\n".join(lines)
