"""Metrics: named counters, gauges, and histograms for one run.

A :class:`MetricsRegistry` lives on the
:class:`~repro.physical.context.ExecutionContext` and is snapshotted into
:class:`~repro.execution.stats.ExecutionStats` after every run — traced or
not, so a traced run reports byte-identical stats to an untraced one.

Metrics come in two determinism classes:

* **deterministic** (the default) — pure functions of the plan and input
  (llm_calls, cache hits, records in/out per operator, virtual busy time
  per pipeline stage).  These are what ``snapshot()`` returns and what
  lands in ``ExecutionStats.metrics``.
* **best-effort** (``best_effort=True``) — real-scheduling observables
  (queue depth high-water marks, queue poll retries) that legitimately
  vary run to run.  They are excluded from the stats snapshot and only
  appear in trace exports via ``snapshot(include_best_effort=True)``.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, List, Optional


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "best_effort", "_value", "_lock")

    _GUARDED_BY = {"_value": "_lock"}

    def __init__(self, name: str, best_effort: bool = False):
        self.name = name
        self.best_effort = best_effort
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def snapshot_value(self) -> int:
        return self.value


class Gauge:
    """A point-in-time value; ``set_max`` keeps the high-water mark."""

    __slots__ = ("name", "best_effort", "_value", "_lock")

    _GUARDED_BY = {"_value": "_lock"}

    def __init__(self, name: str, best_effort: bool = False):
        self.name = name
        self.best_effort = best_effort
        self._value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def set_max(self, value: float) -> None:
        with self._lock:
            if value > self._value:
                self._value = value

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot_value(self) -> float:
        return self.value


#: Quantiles reported by every histogram snapshot, in reporting order.
HISTOGRAM_QUANTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


def nearest_rank(ordered: List[float], q: float) -> float:
    """Exact nearest-rank quantile over pre-sorted samples.

    1-based rank ``ceil(q * n)``, computed in integer arithmetic (q
    quantized to 1e-6) so float rounding can't shift the rank.  Shared
    by the run-scoped :class:`Histogram` and the wall-clock sliding
    windows of :mod:`repro.obs.telemetry`, so both report the same
    quantile definition.
    """
    rank = -(-len(ordered) * int(round(q * 1000000)) // 1000000)
    return ordered[min(max(rank, 1), len(ordered)) - 1]


class Histogram:
    """Summary statistics over observed samples, with quantiles.

    Samples are retained so ``snapshot_value`` can report exact
    nearest-rank p50/p95/p99 — a deterministic definition: the q-th
    quantile of n sorted samples is the one at rank ``ceil(q * n)``
    (1-based), so identical sample multisets yield identical quantiles
    regardless of observation order or worker count.  Run-scoped
    histograms observe at most one sample per record or LLM call, so
    retention stays proportional to run size.
    """

    __slots__ = ("name", "best_effort", "_count", "_sum", "_min", "_max",
                 "_samples", "_lock")

    _GUARDED_BY = {
        "_count": "_lock",
        "_sum": "_lock",
        "_min": "_lock",
        "_max": "_lock",
        "_samples": "_lock",
    }

    def __init__(self, name: str, best_effort: bool = False):
        self.name = name
        self.best_effort = best_effort
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._samples: List[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += value
            self._samples.append(value)
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def mean(self) -> float:
        with self._lock:
            if not self._count:
                return 0.0
            # fsum over the retained samples: exact and order-independent,
            # where the running ``_sum`` carries arrival-order ulp jitter.
            return math.fsum(self._samples) / self._count

    @staticmethod
    def _nearest_rank(ordered: List[float], q: float) -> float:
        return nearest_rank(ordered, q)

    def quantile(self, q: float) -> float:
        """Exact nearest-rank quantile (0 < q <= 1) over all samples."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        with self._lock:
            if not self._samples:
                return 0.0
            return self._nearest_rank(sorted(self._samples), q)

    def snapshot_value(self) -> Dict[str, float]:
        with self._lock:
            snapshot = {
                "count": self._count,
                "sum": round(math.fsum(self._samples), 9),
                "min": self._min if self._min is not None else 0.0,
                "max": self._max if self._max is not None else 0.0,
            }
            ordered = sorted(self._samples)
            for label, q in HISTOGRAM_QUANTILES:
                snapshot[label] = (
                    self._nearest_rank(ordered, q) if ordered else 0.0
                )
            return snapshot


class MetricsRegistry:
    """Creates-or-returns named metrics and snapshots them all.

    Metric names are dotted lowercase paths (``llm.calls``,
    ``op.2.records_out``, ``pipeline.stage0.busy_seconds``) — the same
    convention pz-lint's ``OB401`` enforces for span names.
    """

    _GUARDED_BY = {"_metrics": "_lock"}

    def __init__(self):
        self._metrics: Dict[str, Any] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, cls, best_effort: bool):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, best_effort=best_effort)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} is a {type(metric).__name__}, "
                    f"not a {cls.__name__}"
                )
            return metric

    def counter(self, name: str, best_effort: bool = False) -> Counter:
        return self._get_or_create(name, Counter, best_effort)

    def gauge(self, name: str, best_effort: bool = False) -> Gauge:
        return self._get_or_create(name, Gauge, best_effort)

    def histogram(self, name: str, best_effort: bool = False) -> Histogram:
        return self._get_or_create(name, Histogram, best_effort)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self, include_best_effort: bool = False) -> Dict[str, Any]:
        """All metric values keyed by name, sorted, deterministic by
        default (best-effort metrics only when explicitly requested)."""
        with self._lock:
            metrics = list(self._metrics.items())
        return {
            name: metric.snapshot_value()
            for name, metric in sorted(metrics)
            if include_best_effort or not metric.best_effort
        }

    def clear(self) -> None:
        with self._lock:
            self._metrics = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self)} metrics)"
