"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``models`` — list the registered model cards (the physical plan space).
* ``demo`` — run one of the three demonstration scenarios end-to-end.
* ``run`` — build and execute a pipeline over a folder from the shell.
* ``chat`` — an interactive PalimpChat REPL (the demo's chat box, in a
  terminal).
* ``serve`` — the multi-tenant HTTP service (sessions, turns, quotas,
  ``/metrics``; see ``docs/server.md``).
* ``top`` — a live terminal dashboard over a running server's
  ``/metrics`` endpoint (per-tenant throughput, latency percentiles,
  quota burn-down, SLO alerts).
* ``lint`` — statically analyze pipelines, tools, programs, and notebooks
  (the pz-lint rules; see ``docs/diagnostics.md``).
* ``trace`` — run a demo scenario with tracing on and analyze/export the
  trace (Chrome ``trace_event`` JSON, critical path, tree, flame).
* ``runs`` — the persistent run registry: record demo runs with
  provenance, list/show them, explain records (``why`` / ``why-not``),
  diff two runs (plan, per-op stats, record membership), ``rerun`` a
  recorded run incrementally after a corpus delta (replaying unchanged
  documents' LLM calls), and ``prune`` old runs by count or byte budget.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import repro as pz
from repro.llm.models import default_registry

#: Used only when neither installed metadata nor pyproject.toml is
#: readable (e.g. the package was vendored without its build files).
_FALLBACK_VERSION = "0.0.0+unknown"
_FALLBACK_DESCRIPTION = (
    "PalimpChat reproduction: declarative and interactive AI analytics"
)


def package_metadata() -> Tuple[str, str]:
    """``(version, description)`` for the CLI banner and ``--version``.

    Reads the installed distribution metadata first, then falls back to
    parsing ``pyproject.toml`` (source checkouts run via ``PYTHONPATH``),
    so the parser never drifts from the packaging truth.
    """
    try:
        from importlib.metadata import metadata

        meta = metadata("repro")
        version = meta["Version"]
        summary = meta["Summary"]
        if version and summary:
            return version, summary
    except Exception:
        pass
    try:
        import tomllib
    except ImportError:  # Python < 3.11
        tomllib = None
    if tomllib is not None:
        pyproject = Path(__file__).resolve().parents[2] / "pyproject.toml"
        try:
            project = tomllib.loads(pyproject.read_text())["project"]
            return (
                project.get("version", _FALLBACK_VERSION),
                project.get("description", _FALLBACK_DESCRIPTION),
            )
        except (OSError, KeyError, ValueError):
            pass
    return _FALLBACK_VERSION, _FALLBACK_DESCRIPTION


def _cmd_models(args) -> int:
    header = (
        f"{'model':<24} {'provider':<10} {'$/1M in':>8} {'$/1M out':>9} "
        f"{'quality':>8} {'context':>9} {'reasoning':>10}"
    )
    print(header)
    print("-" * len(header))
    for card in default_registry().all_cards():
        print(
            f"{card.name:<24} {card.provider:<10} "
            f"{card.usd_per_1m_input:>8.2f} {card.usd_per_1m_output:>9.2f} "
            f"{card.quality:>8.2f} {card.context_window:>9} "
            f"{'yes' if card.supports_reasoning else 'no':>10}"
        )
    return 0


_SCENARIOS = {
    "sci": "scientific discovery (papers -> datasets)",
    "legal": "legal discovery (responsive review)",
    "realestate": "real-estate search (semantic + analytics)",
}


def _demo_pipelines(data_dir=None) -> Dict[str, "pz.Dataset"]:
    """Build every demo scenario's pipeline (registering the corpora)."""
    from repro.corpora import register_demo_datasets
    from repro.corpora.legal import CONTRACT_FIELDS, LEGAL_PREDICATE
    from repro.corpora.papers import CLINICAL_FIELDS, PAPERS_PREDICATE
    from repro.corpora.realestate import (
        LISTING_FIELDS,
        REALESTATE_PREDICATE,
    )

    register_demo_datasets(data_dir)
    clinical = pz.make_schema(
        "ClinicalData", "Datasets from papers.", CLINICAL_FIELDS
    )
    contract = pz.make_schema("Contract", "Deal terms.", CONTRACT_FIELDS)
    listing = pz.make_schema("Listing", "A listing.", LISTING_FIELDS)
    return {
        "sci": (
            pz.Dataset(source="sigmod-demo")
            .filter(PAPERS_PREDICATE)
            .convert(clinical, cardinality=pz.Cardinality.ONE_TO_MANY)
        ),
        "legal": (
            pz.Dataset(source="legal-demo")
            .filter(LEGAL_PREDICATE)
            .convert(contract)
        ),
        "realestate": (
            pz.Dataset(source="realestate-demo")
            .filter(REALESTATE_PREDICATE)
            .convert(listing)
        ),
    }


def _cmd_demo(args) -> int:
    dataset = _demo_pipelines(args.data_dir)[args.scenario]
    records, stats = pz.Execute(
        dataset, policy=args.policy, max_workers=args.workers
    )
    print(stats.summary())
    print()
    for record in records[: args.limit]:
        print(f"- {record.to_dict()}")
    remaining = len(records) - args.limit
    if remaining > 0:
        print(f"... and {remaining} more records")
    return 0


def _cmd_run(args) -> int:
    dataset = pz.Dataset(source=args.source)
    if args.filter:
        dataset = dataset.filter(args.filter)
    if args.extract:
        fields = [f.strip() for f in args.extract.split(",") if f.strip()]
        if not fields:
            print("error: --extract needs field names", file=sys.stderr)
            return 2
        schema = pz.make_schema(
            "Extracted",
            "Fields extracted by the command line.",
            {name: f"The {name.replace('_', ' ')}" for name in fields},
        )
        cardinality = (
            pz.Cardinality.ONE_TO_MANY if args.one_to_many
            else pz.Cardinality.ONE_TO_ONE
        )
        dataset = dataset.convert(schema, cardinality=cardinality)
    if args.limit:
        dataset = dataset.limit(args.limit)
    if args.explain:
        engine = pz.ExecutionEngine(
            policy=args.policy, max_workers=args.workers
        )
        print(engine.explain(dataset))
        return 0
    records, stats = pz.Execute(
        dataset, policy=args.policy, max_workers=args.workers
    )
    print(stats.summary())
    print()
    for record in records:
        print(record.to_json())
    return 0


def _cmd_chat(args) -> int:
    from repro.chat import PalimpChatSession
    from repro.corpora import register_demo_datasets

    register_demo_datasets(args.data_dir)
    session = PalimpChatSession()
    print(
        "PalimpChat — describe a data pipeline in plain English.\n"
        "Datasets registered: sigmod-demo, legal-demo, realestate-demo.\n"
        "Type 'exit' to leave.\n"
    )
    while True:
        try:
            message = input("you> ").strip()
        except EOFError:
            break
        if not message:
            continue
        if message.lower() in ("exit", "quit", "bye"):
            break
        reply = session.chat(message)
        if reply.tool_sequence:
            print(f"[tools: {' -> '.join(reply.tool_sequence)}]")
        print(f"palimpchat> {reply.text}\n")
    if args.export:
        path = session.export_notebook(args.export)
        print(f"session notebook saved to {path}")
    return 0


def _cmd_serve(args) -> int:
    from repro.server import serve

    quota = float(args.quota) if args.quota is not None else None
    server = serve(
        host=args.host,
        port=args.port,
        root=args.root,
        max_cost_usd=quota,
        max_tokens=args.quota_tokens,
        data_dir=args.data_dir,
        quiet=not args.verbose,
        telemetry=(False if args.no_telemetry else None),
        telemetry_root=args.telemetry_root,
        async_workers=args.async_workers,
        async_queue=args.async_queue,
    )
    host, port = server.server_address
    root = server.store.root
    caps = []
    if quota is not None:
        caps.append(f"${quota:.2f}")
    if args.quota_tokens is not None:
        caps.append(f"{args.quota_tokens} tokens")
    print(f"repro serve: http://{host}:{port}  "
          f"(tenants under {root}; default quota: "
          f"{' / '.join(caps) if caps else 'unmetered'})")
    if server.store.telemetry.enabled:
        print(f"telemetry: GET /metrics (+ /healthz SLOs); "
              f"logs under {server.store.telemetry.log.root}; "
              f"watch live with 'repro top --url http://{host}:{port}'")
    print("POST /tenants/<id>/sessions to begin; Ctrl-C to stop.")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.server_close()
        server.store.close()
    return 0


def _cmd_top(args) -> int:
    """Live per-tenant service dashboard: poll ``/metrics?format=json``."""
    import json as _json
    import time as _time
    import urllib.error
    import urllib.request

    from repro.obs.telemetry import render_dashboard

    url = args.url.rstrip("/") + "/metrics?format=json"
    previous = None
    previous_at = None
    iteration = 0
    while True:
        try:
            with urllib.request.urlopen(url, timeout=10.0) as resp:
                payload = _json.loads(resp.read().decode("utf-8"))
        except (urllib.error.URLError, OSError, ValueError) as exc:
            print(f"repro top: cannot reach {args.url}: {exc}",
                  file=sys.stderr)
            return 2
        now = _time.monotonic()  # wallclock: ok(dashboard poll cadence, client side only)
        elapsed = (now - previous_at) if previous_at is not None else None
        frame = render_dashboard(payload, previous=previous,
                                 elapsed=elapsed)
        if not args.no_clear:
            print("\x1b[2J\x1b[H", end="")
        print(frame)
        previous, previous_at = payload, now
        iteration += 1
        if args.iterations and iteration >= args.iterations:
            return 0
        try:
            _time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def _lint_paths(paths: List[str], config, result) -> None:
    """AST-lint ``.py`` files and validate ``.ipynb`` files (no execution)."""
    from repro.analysis import Diagnostic, Severity, lint_notebook, lint_program

    expanded: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            expanded.extend(sorted(path.rglob("*.py")))
            expanded.extend(sorted(path.rglob("*.ipynb")))
        else:
            expanded.append(path)
    for path in expanded:
        if path.suffix == ".ipynb":
            result.extend(lint_notebook(path, config=config))
            continue
        try:
            source = path.read_text()
        except OSError as exc:
            result.add(Diagnostic(
                code="CG306", severity=Severity.ERROR,
                message=f"cannot read {path}: {exc}", location=str(path),
            ))
            continue
        result.extend(lint_program(source, config=config,
                                   filename=str(path)))


def _lint_loaded(paths: List[str], config, result) -> None:
    """Execute python files and lint the objects they define.

    Any :class:`~repro.core.dataset.Dataset`, tool, or tool registry left
    in the module namespace gets plan/agent-linted.  ``__name__`` is set
    to ``"__lint__"`` so ``if __name__ == "__main__"`` blocks don't run.
    """
    from repro.agent.tools import Tool, ToolRegistry
    from repro.analysis import Diagnostic, Severity, lint_plan, lint_tool
    from repro.core.dataset import Dataset

    for raw in paths:
        path = Path(raw)
        namespace = {"__name__": "__lint__", "__file__": str(path)}
        try:
            exec(compile(path.read_text(), str(path), "exec"), namespace)
        except Exception as exc:
            result.add(Diagnostic(
                code="CG306", severity=Severity.ERROR,
                message=f"loading failed: {type(exc).__name__}: {exc}",
                location=str(path),
            ))
            continue
        for name, value in namespace.items():
            if name.startswith("_"):
                continue
            location_prefix = f"{path.name}:{name} "
            if isinstance(value, Dataset):
                result.extend(lint_plan(value, config=config),
                              location_prefix=location_prefix)
            elif isinstance(value, Tool):
                result.extend(lint_tool(value, config=config),
                              location_prefix=location_prefix)
            elif isinstance(value, ToolRegistry):
                for tool_name in value.names():
                    result.extend(
                        lint_tool(value.get(tool_name), config=config),
                        location_prefix=location_prefix,
                    )


#: Human labels for the rule families, for --list-rules grouping.
_FAMILY_LABELS = {
    "PZ": "plan lint",
    "AG": "agent/tool lint",
    "CG": "codegen lint",
    "OB": "observability lint",
    "CC": "concurrency & determinism",
    "SV": "server/tenancy lint",
}


def _rule_families():
    """{family: [Rule, ...]} over every registered rule, sorted."""
    from repro.analysis import all_rules

    families = {}
    for rule in all_rules():
        families.setdefault(rule.code.rstrip("0123456789"), []).append(rule)
    return families


def _cmd_lint(args) -> int:
    from repro.analysis import LintConfig, LintResult, lint_plan

    families = _rule_families()

    if args.list_rules:
        for family in sorted(families):
            rules = families[family]
            label = _FAMILY_LABELS.get(family, "other")
            print(f"{family} — {label} ({len(rules)} rules)")
            for rule in rules:
                print(f"  {rule.describe()}")
        print(
            f"{sum(len(r) for r in families.values())} rules in "
            f"{len(families)} families"
        )
        return 0

    config = LintConfig.parse(args.disable)
    if args.family:
        wanted = {
            token.strip().upper()
            for token in args.family.split(",") if token.strip()
        }
        unknown = wanted - set(families)
        if unknown:
            print(
                f"unknown rule families: {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(families))}"
            )
            return 2
        config = LintConfig(
            disabled=config.disabled | (set(families) - wanted),
            severity_overrides=config.severity_overrides,
        )

    def family_enabled(family: str) -> bool:
        return any(config.is_enabled(r.code) for r in families[family])

    result = LintResult()

    # Skip demo/tool linting when their entire families are filtered out
    # (--family CC shouldn't pay for demo corpus generation).
    if not args.no_demos and family_enabled("PZ"):
        for scenario, dataset in _demo_pipelines(args.data_dir).items():
            result.extend(lint_plan(dataset, config=config),
                          location_prefix=f"demo:{scenario} ")

    if not args.no_tools and family_enabled("AG"):
        from repro.analysis import lint_registry
        from repro.chat.tools_pz import build_pz_tools
        from repro.chat.workspace import PipelineWorkspace

        registry = build_pz_tools(PipelineWorkspace())
        result.extend(lint_registry(registry, config=config))

    if args.paths:
        _lint_paths(args.paths, config, result)
    if args.load:
        _lint_loaded(args.load, config, result)

    result = result.sorted()
    if args.format == "json":
        print(result.to_json())
    else:
        if result.diagnostics:
            print(result.render())
        print(f"lint: {result.summary()}")
    failed = bool(result.errors) or (args.strict and result.warnings)
    return 1 if failed else 0


def _cmd_trace(args) -> int:
    from repro.obs import (
        analyze_critical_path,
        render_flame,
        render_tree,
        write_chrome_trace,
        write_plain_json,
    )

    dataset = _demo_pipelines(args.data_dir)[args.scenario]
    records, stats = pz.Execute(
        dataset,
        policy=args.policy,
        max_workers=args.workers,
        executor=args.executor,
        batch_size=args.batch_size,
        shards=(
            args.shards if args.executor in ("sharded", "async") else None
        ),
        trace=True,
    )
    trace = stats.trace
    report = analyze_critical_path(trace)
    if args.view == "tree":
        print(render_tree(trace))
    elif args.view == "flame":
        print(render_flame(trace))
    elif args.view == "critical-path":
        print(report.render())
    else:
        print(
            f"recorded {len(trace)} spans over {trace.makespan:.3f} "
            f"virtual seconds ({len(records)} records, "
            f"{stats.executor} executor, shards={stats.shards}, "
            f"batch_size={stats.batch_size})"
        )
        print()
        print(report.render())
        histograms = [
            (name, value) for name, value in sorted(stats.metrics.items())
            if isinstance(value, dict) and "p50" in value
            and value.get("count")
        ]
        if histograms:
            print()
            print("histograms (deterministic nearest-rank quantiles):")
            print(f"  {'metric':<30} {'count':>6} {'p50':>12} "
                  f"{'p95':>12} {'p99':>12}")
            for name, value in histograms:
                print(
                    f"  {name:<30} {value['count']:>6} "
                    f"{value['p50']:>12.6f} {value['p95']:>12.6f} "
                    f"{value['p99']:>12.6f}"
                )
    if args.output:
        writer = (
            write_chrome_trace if args.format == "chrome"
            else write_plain_json
        )
        writer(trace, args.output, metrics=stats.metrics)
        print(f"\ntrace written to {args.output} ({args.format} format)")
    return 0


def _cmd_runs(args) -> int:
    from repro.obs import RunRegistry, render_why, render_why_not

    registry = RunRegistry(args.runs_dir)

    if args.runs_command == "record":
        dataset = _demo_pipelines(args.data_dir)[args.scenario]
        records, stats = pz.Execute(
            dataset,
            policy=args.policy,
            max_workers=args.workers,
            executor=args.executor,
            batch_size=args.batch_size,
            shards=(
                args.shards if args.executor in ("sharded", "async")
                else None
            ),
            trace=True,
            provenance=True,
        )
        snapshot = registry.record(records, stats)
        print(
            f"recorded {snapshot.run_id}: {args.scenario} scenario, "
            f"{args.policy} policy, {len(records)} records, "
            f"${stats.total_cost_usd:.4f} "
            f"(plan {stats.plan_stats.plan_id})"
        )
        print(f"stored under {registry.root / snapshot.run_id}")
        return 0

    if args.runs_command == "list":
        rows = registry.list()
        if not rows:
            print(f"no recorded runs under {registry.root}")
            return 0
        header = (
            f"{'run':<10} {'policy':<9} {'executor':<11} {'plan':<13} "
            f"{'records':>7} {'cost($)':>9} {'time(s)':>9}"
        )
        print(header)
        print("-" * len(header))
        for meta in rows:
            print(
                f"{meta['run_id']:<10} {meta.get('policy', '?'):<9} "
                f"{meta.get('executor', '?'):<11} "
                f"{meta.get('plan_id', '?'):<13} "
                f"{meta.get('records_out', 0):>7} "
                f"{meta.get('total_cost_usd', 0.0):>9.4f} "
                f"{meta.get('total_time_seconds', 0.0):>9.1f}"
            )
        return 0

    if args.runs_command == "prune":
        if args.keep_last is None and args.max_bytes is None:
            print("error: pass --keep-last and/or --max-bytes",
                  file=sys.stderr)
            return 2
        before = registry.size_bytes()
        doomed = registry.prune(keep_last=args.keep_last,
                                max_bytes=args.max_bytes)
        after = registry.size_bytes()
        if not doomed:
            print(f"nothing to prune under {registry.root} "
                  f"({before} bytes stored)")
            return 0
        print(f"pruned {len(doomed)} run(s): {', '.join(doomed)}")
        print(f"registry {registry.root}: {before} -> {after} bytes")
        return 0

    if args.runs_command == "rerun":
        from repro.core.schemas import make_schema
        from repro.corpora.scale import (
            SCALE_FIELDS,
            SCALE_PREDICATE,
            generate_scale_source,
            mutate_scale_source,
        )

        schema = make_schema(
            "ClinicalNote",
            "Cohort and stage extracted from a clinical note",
            list(SCALE_FIELDS),
            field_descriptions=list(SCALE_FIELDS.values()),
        )

        def build(source):
            return pz.Dataset(source).filter(SCALE_PREDICATE).convert(schema)

        common = dict(
            policy=args.policy,
            max_workers=args.workers,
            executor=args.executor,
            trace=True,
            provenance=True,
        )
        if args.base:
            base_snapshot = registry.load(args.base)
            if base_snapshot.calls is None or base_snapshot.manifest is None:
                print(f"error: {args.base} has no captured call log / "
                      "source manifest; record a base with "
                      "'repro runs rerun' (no --base) first",
                      file=sys.stderr)
                return 2
        else:
            base_source = generate_scale_source(args.docs, seed=args.seed)
            records, stats = pz.Execute(
                build(base_source), capture_calls=True, **common)
            base_snapshot = registry.record(records, stats)
            print(f"recorded base {base_snapshot.run_id}: "
                  f"{args.docs} docs, {len(records)} records, "
                  f"${stats.total_cost_usd:.4f}")
        mutated = mutate_scale_source(
            args.docs, seed=args.seed,
            adds=args.adds, edits=args.edits, drops=args.drops,
        )
        records, stats = pz.Execute(
            build(mutated), incremental=True, base_run=base_snapshot,
            **common)
        snapshot = registry.record(records, stats)
        print(stats.incremental.render())
        print(f"recorded {snapshot.run_id}: {len(records)} records, "
              f"stored under {registry.root / snapshot.run_id}")
        return 0

    # Remaining subcommands operate on stored runs.
    run_id = args.run or registry.latest()
    if run_id is None:
        print(f"no recorded runs under {registry.root}; "
              "use 'repro runs record' first", file=sys.stderr)
        return 2
    try:
        snapshot = registry.load(run_id)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.runs_command == "show":
        for key, value in sorted(snapshot.meta.items()):
            print(f"{key:<20} {value}")
        operators = (snapshot.stats.get("plan") or {}).get("operators") or []
        if operators:
            print()
            print(f"{'operator':<38} {'in':>5} {'out':>5} "
                  f"{'time(s)':>9} {'cost($)':>9} {'calls':>6}")
            for row in operators:
                print(
                    f"{row['operator']:<38} {row['records_in']:>5} "
                    f"{row['records_out']:>5} {row['time_seconds']:>9.1f} "
                    f"{row['cost_usd']:>9.4f} {row['llm_calls']:>6}"
                )
        if snapshot.graph is not None:
            print()
            print(f"provenance: {len(snapshot.graph.nodes)} records, "
                  f"{len(snapshot.graph.events)} events, "
                  f"outputs {snapshot.graph.output_ids}")
        return 0

    if args.runs_command == "why":
        if snapshot.graph is None:
            print(f"error: {run_id} has no provenance graph",
                  file=sys.stderr)
            return 2
        if args.record is None:
            print(f"{run_id} output records "
                  f"(pass an id to 'repro runs why'):")
            for node_id in snapshot.graph.output_ids:
                node = snapshot.graph.node(node_id)
                print(f"  #{node_id} [{node['schema']}] {node['preview']}")
            return 0
        from repro.obs import ProvenanceError

        try:
            print(render_why(snapshot.graph.why(args.record)))
        except ProvenanceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return 0

    if args.runs_command == "why-not":
        if snapshot.graph is None:
            print(f"error: {run_id} has no provenance graph",
                  file=sys.stderr)
            return 2
        print(render_why_not(snapshot.graph.why_not(args.source)))
        return 0

    # diff: snapshot is run b (or latest); a defaults to the run before b.
    other = args.against or registry.latest(before=run_id)
    if other is None:
        print(f"error: no earlier run to diff {run_id} against",
              file=sys.stderr)
        return 2
    diff = registry.diff(other, run_id)
    if args.format == "json":
        print(diff.to_json())
    else:
        print(diff.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    version, description = package_metadata()
    parser = argparse.ArgumentParser(prog="repro", description=description)
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {version}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list registered model cards")

    demo = sub.add_parser("demo", help="run a demonstration scenario")
    demo.add_argument("--scenario", choices=sorted(_SCENARIOS),
                      default="sci",
                      help="; ".join(f"{k}: {v}" for k, v in
                                     _SCENARIOS.items()))
    demo.add_argument("--policy", default="quality",
                      help="quality | cost | runtime")
    demo.add_argument("--workers", type=int, default=1)
    demo.add_argument("--limit", type=int, default=10,
                      help="records to print")
    demo.add_argument("--data-dir", default=None,
                      help="where to generate/reuse the demo corpora")

    run = sub.add_parser("run", help="run a pipeline over a folder")
    run.add_argument("--source", required=True,
                     help="folder path or registered dataset id")
    run.add_argument("--filter", default=None,
                     help="natural-language predicate")
    run.add_argument("--extract", default=None,
                     help="comma-separated field names to extract")
    run.add_argument("--one-to-many", action="store_true")
    run.add_argument("--policy", default="quality")
    run.add_argument("--workers", type=int, default=1)
    run.add_argument("--limit", type=int, default=0)
    run.add_argument("--explain", action="store_true",
                     help="print the plan space and exit without executing")

    chat = sub.add_parser("chat", help="interactive PalimpChat REPL")
    chat.add_argument("--data-dir", default=None)
    chat.add_argument("--export", default=None,
                      help="save the session notebook here on exit")

    srv = sub.add_parser(
        "serve",
        help="multi-tenant PalimpChat HTTP service",
        description="Serve chat sessions as HTTP/JSON resources "
                    "(stdlib http.server; no extra dependencies). Each "
                    "tenant gets an isolated workspace, run registry, "
                    "and session store under <root>/<tenant-id>/, plus "
                    "a token/cost quota enforced before and during "
                    "every turn. See docs/server.md for the API.",
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8787,
                     help="0 binds an ephemeral port")
    srv.add_argument("--root", default=None,
                     help="tenant state root (default: .repro/tenants)")
    srv.add_argument("--quota", default=None, metavar="USD",
                     help="default per-tenant cost cap in USD "
                          "(default: unmetered)")
    srv.add_argument("--quota-tokens", type=int, default=None,
                     metavar="N", help="default per-tenant token cap")
    srv.add_argument("--data-dir", default=None,
                     help="where to generate/reuse the demo corpora")
    srv.add_argument("--verbose", action="store_true",
                     help="log each request line to stderr")
    srv.add_argument("--no-telemetry", action="store_true",
                     help="disable the wall-clock ops layer (no JSONL "
                          "logs; /metrics and SLOs read as empty)")
    srv.add_argument("--telemetry-root", default=None, metavar="DIR",
                     help="structured-log directory "
                          "(default: <root>/../telemetry)")
    srv.add_argument("--async-workers", type=int, default=4, metavar="N",
                     help="worker threads for wait=false turns "
                          "(default: 4)")
    srv.add_argument("--async-queue", type=int, default=16, metavar="N",
                     help="queued wait=false turns beyond the workers "
                          "before 503 (default: 16)")

    top = sub.add_parser(
        "top",
        help="live per-tenant dashboard for a running server",
        description="Poll a repro serve instance's /metrics endpoint and "
                    "render a terminal dashboard: per-tenant turn "
                    "throughput, in-flight turns, latency percentiles, "
                    "quota burn-down, worker-pool occupancy, and firing "
                    "SLO alerts.",
    )
    top.add_argument("--url", default="http://127.0.0.1:8787",
                     help="server base URL (default: %(default)s)")
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between polls (default: 2)")
    top.add_argument("--iterations", type=int, default=0, metavar="N",
                     help="exit after N frames (default: run until ^C)")
    top.add_argument("--no-clear", action="store_true",
                     help="append frames instead of clearing the screen")

    lint = sub.add_parser(
        "lint",
        help="statically analyze pipelines, tools, and programs",
        description="Run pz-lint. By default lints the demo corpora "
                    "pipelines and the registered chat tools; positional "
                    "paths (.py/.ipynb files or directories) are "
                    "AST-checked without executing them. Exits 1 when any "
                    "error-level diagnostic is found.",
    )
    lint.add_argument("paths", nargs="*",
                      help=".py/.ipynb files or directories to lint "
                           "statically")
    lint.add_argument("--load", action="append", default=[],
                      metavar="PATH",
                      help="execute this python file and lint the "
                           "datasets/tools it defines (repeatable)")
    lint.add_argument("--data-dir", default=None,
                      help="where to generate/reuse the demo corpora")
    lint.add_argument("--no-demos", action="store_true",
                      help="skip linting the demo corpora pipelines")
    lint.add_argument("--no-tools", action="store_true",
                      help="skip linting the registered chat tools")
    lint.add_argument("--disable", default=None, metavar="CODES",
                      help="comma-separated rule codes or prefixes to "
                           "disable (e.g. PZ102,AG,CG312)")
    lint.add_argument("--family", default=None, metavar="FAMILIES",
                      help="comma-separated rule families to run "
                           "exclusively (e.g. CC or PZ,OB); all other "
                           "families are disabled")
    lint.add_argument("--strict", action="store_true",
                      help="exit non-zero on warnings too")
    lint.add_argument("--format", choices=("text", "json"),
                      default="text")
    lint.add_argument("--list-rules", action="store_true",
                      help="print every registered rule and exit")

    trace = sub.add_parser(
        "trace",
        help="record and analyze an execution trace",
        description="Run a demo scenario with tracing enabled, print a "
                    "trace analysis (critical path by default), and "
                    "optionally export the trace as Chrome trace_event "
                    "JSON (loadable in about://tracing / Perfetto) or "
                    "plain JSON.",
    )
    trace.add_argument("--scenario", choices=sorted(_SCENARIOS),
                       default="sci",
                       help="; ".join(f"{k}: {v}" for k, v in
                                      _SCENARIOS.items()))
    trace.add_argument("--policy", default="quality",
                       help="quality | cost | runtime")
    trace.add_argument("--workers", type=int, default=4)
    trace.add_argument("--executor",
                       choices=("sequential", "parallel", "pipelined",
                                "sharded", "async"),
                       default="pipelined")
    trace.add_argument("--batch-size", type=int, default=4,
                       help="LLM batch size (pipelined/sharded executors)")
    trace.add_argument("--shards", type=int, default=None,
                       help="shard count for --executor sharded/async "
                            "(default: optimizer chooses)")
    trace.add_argument("--data-dir", default=None,
                       help="where to generate/reuse the demo corpora")
    trace.add_argument("--output", default=None, metavar="PATH",
                       help="write the trace to this file")
    trace.add_argument("--format", choices=("chrome", "json"),
                       default="chrome",
                       help="output file format (with --output)")
    trace.add_argument("--view",
                       choices=("summary", "tree", "critical-path",
                                "flame"),
                       default="summary",
                       help="what analysis to print")

    runs = sub.add_parser(
        "runs",
        help="record, inspect, explain, and diff executions",
        description="The persistent run registry. 'record' executes a "
                    "demo scenario with provenance + tracing on and "
                    "stores it under the runs directory; 'why' explains "
                    "how an output record was derived, 'why-not' "
                    "explains what eliminated a source record, and "
                    "'diff' compares two runs (plan, per-operator "
                    "stats, record membership with explanations).",
    )
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)

    def _runs_dir(p):
        from repro.obs.registry import DEFAULT_RUNS_DIR

        p.add_argument("--runs-dir", default=DEFAULT_RUNS_DIR,
                       help="registry directory "
                            f"(default: {DEFAULT_RUNS_DIR})")

    record = runs_sub.add_parser(
        "record", help="execute a demo scenario and store the run")
    record.add_argument("--scenario", choices=sorted(_SCENARIOS),
                        default="sci",
                        help="; ".join(f"{k}: {v}" for k, v in
                                       _SCENARIOS.items()))
    record.add_argument("--policy", default="quality",
                        help="quality | cost | runtime")
    record.add_argument("--workers", type=int, default=1)
    record.add_argument("--executor",
                        choices=("sequential", "parallel", "pipelined",
                                 "sharded", "async"),
                        default="sequential")
    record.add_argument("--batch-size", type=int, default=1)
    record.add_argument("--shards", type=int, default=None,
                        help="shard count for --executor sharded/async "
                             "(default: optimizer chooses)")
    record.add_argument("--data-dir", default=None,
                        help="where to generate/reuse the demo corpora")
    _runs_dir(record)

    runs_list = runs_sub.add_parser("list", help="list stored runs")
    _runs_dir(runs_list)

    show = runs_sub.add_parser("show", help="metadata + per-op stats "
                                            "of one run")
    show.add_argument("run", nargs="?", default=None,
                      help="run id (default: latest)")
    _runs_dir(show)

    why = runs_sub.add_parser(
        "why", help="derivation tree of an output record")
    why.add_argument("record", nargs="?", type=int, default=None,
                     help="canonical record id (omit to list outputs)")
    why.add_argument("--run", default=None,
                     help="run id (default: latest)")
    _runs_dir(why)

    why_not = runs_sub.add_parser(
        "why-not", help="what eliminated a source record")
    why_not.add_argument("source",
                         help="source document id (or a substring)")
    why_not.add_argument("--run", default=None,
                         help="run id (default: latest)")
    _runs_dir(why_not)

    diff = runs_sub.add_parser("diff", help="compare two stored runs")
    diff.add_argument("run", nargs="?", default=None,
                      help="newer run id (default: latest)")
    diff.add_argument("--against", default=None, metavar="RUN",
                      help="older run id (default: the run before)")
    diff.add_argument("--format", choices=("text", "json"),
                      default="text")
    _runs_dir(diff)

    rerun = runs_sub.add_parser(
        "rerun",
        help="incremental re-run of the scale scenario after a corpus "
             "delta",
        description="Demonstrates incremental execution: records a base "
                    "run over the deterministic scale corpus (with the "
                    "LLM call log captured), applies an add/edit/drop "
                    "delta to the corpus, and re-runs incrementally — "
                    "unchanged documents replay their recorded calls, "
                    "only the delta pays for fresh LLM work, and the "
                    "output is byte-identical to a cold run.")
    rerun.add_argument("--docs", type=int, default=200,
                       help="corpus size (default: 200)")
    rerun.add_argument("--seed", type=int, default=11)
    rerun.add_argument("--adds", type=int, default=1,
                       help="documents added to the corpus (default: 1)")
    rerun.add_argument("--edits", type=int, default=1,
                       help="documents edited in place (default: 1)")
    rerun.add_argument("--drops", type=int, default=1,
                       help="documents removed (default: 1)")
    rerun.add_argument("--policy", default="quality",
                       help="quality | cost | runtime")
    rerun.add_argument("--workers", type=int, default=1)
    rerun.add_argument("--executor",
                       choices=("sequential", "parallel", "pipelined",
                                "sharded", "async"),
                       default="sequential")
    rerun.add_argument("--base", default=None, metavar="RUN",
                       help="re-run from this stored run instead of "
                            "recording a fresh base")
    _runs_dir(rerun)

    prune = runs_sub.add_parser(
        "prune", help="delete old runs (keep-last-N and/or byte budget)")
    prune.add_argument("--keep-last", type=int, default=None,
                       metavar="N", help="retain only the N newest runs")
    prune.add_argument("--max-bytes", type=int, default=None,
                       metavar="BYTES",
                       help="drop oldest runs until the registry fits "
                            "(the newest run always survives)")
    _runs_dir(prune)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "models": _cmd_models,
        "demo": _cmd_demo,
        "run": _cmd_run,
        "chat": _cmd_chat,
        "serve": _cmd_serve,
        "top": _cmd_top,
        "lint": _cmd_lint,
        "trace": _cmd_trace,
        "runs": _cmd_runs,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
