"""PalimpChat reproduction: declarative and interactive AI analytics.

This package reimplements, from scratch and fully offline, the three systems
the SIGMOD'25 demo paper "PalimpChat: Declarative and Interactive AI
analytics" integrates:

* **Palimpzest** (``repro.core``, ``repro.physical``, ``repro.optimizer``,
  ``repro.execution``) — a declarative AI analytics framework with logical
  semantic operators, a per-model physical plan space, policy-driven
  optimization, and metered execution.
* **Archytas** (``repro.agent``) — a ReAct agent toolbox with a ``@tool``
  decorator, docstring-driven tool specs, and ``{{variable}}`` templating.
* **PalimpChat** (``repro.chat``) — the chat layer: Palimpzest tools for the
  agent, a conversational session, and a Beaker-like notebook substrate.

The hosted LLM APIs the paper depends on are replaced by a deterministic
simulated runtime (``repro.llm``); synthetic corpora for the three demo
scenarios live in ``repro.corpora``.

Quickstart (mirrors the paper's Fig. 6)::

    import repro as pz

    dataset = pz.Dataset(source="sigmod-demo", schema=pz.PDFFile)
    dataset = dataset.filter("The papers are about colorectal cancer")
    ClinicalData = pz.make_schema(
        "ClinicalData",
        "A schema for extracting clinical data datasets from papers.",
        {"name": "The name of the clinical data dataset",
         "description": "A short description of the content of the dataset",
         "url": "The public URL where the dataset can be accessed"},
    )
    dataset = dataset.convert(
        ClinicalData, cardinality=pz.Cardinality.ONE_TO_MANY
    )
    records, stats = pz.Execute(dataset, policy=pz.MaxQuality())
    print(stats.summary())
"""

from repro.core.fields import (
    Field,
    StringField,
    NumericField,
    BooleanField,
    ListField,
    BytesField,
    UrlField,
)
from repro.core.schemas import Schema, make_schema
from repro.core.builtin_schemas import (
    File,
    TextFile,
    PDFFile,
    HTMLFile,
    CSVFile,
    Email,
    WebPage,
)
from repro.core.records import DataRecord
from repro.core.cardinality import Cardinality
from repro.core.dataset import Dataset
from repro.core.sources import (
    DataSource,
    DirectorySource,
    FileSource,
    MemorySource,
    CallbackSource,
    register_datasource,
    global_source_registry,
)
from repro.execution.execute import Execute, ExecutionEngine
from repro.execution.pipeline import PipelinedExecutor
from repro.execution.stats import ExecutionStats
from repro.optimizer.policies import (
    Policy,
    MaxQuality,
    MinCost,
    MinTime,
    MaxQualityAtFixedCost,
    MaxQualityAtFixedTime,
    MinCostAtFixedQuality,
    WeightedBlend,
)
from repro.llm.models import ModelCard, register_model, available_models
from repro.llm.cache import CallCache
from repro.obs import (
    Tracer,
    analyze_critical_path,
    render_flame,
    render_tree,
    write_chrome_trace,
)

__version__ = "0.1.0"

__all__ = [
    "Field",
    "StringField",
    "NumericField",
    "BooleanField",
    "ListField",
    "BytesField",
    "UrlField",
    "Schema",
    "make_schema",
    "File",
    "TextFile",
    "PDFFile",
    "HTMLFile",
    "CSVFile",
    "Email",
    "WebPage",
    "DataRecord",
    "Cardinality",
    "Dataset",
    "DataSource",
    "DirectorySource",
    "FileSource",
    "MemorySource",
    "CallbackSource",
    "register_datasource",
    "global_source_registry",
    "Execute",
    "ExecutionEngine",
    "ExecutionStats",
    "PipelinedExecutor",
    "Policy",
    "MaxQuality",
    "MinCost",
    "MinTime",
    "MaxQualityAtFixedCost",
    "MaxQualityAtFixedTime",
    "MinCostAtFixedQuality",
    "WeightedBlend",
    "ModelCard",
    "register_model",
    "available_models",
    "CallCache",
    "Tracer",
    "analyze_critical_path",
    "render_flame",
    "render_tree",
    "write_chrome_trace",
    "__version__",
]
