"""pz-lint: static analysis for pipelines, tools, and generated code.

Three analyzer families share one diagnostics vocabulary:

* ``PZ1xx`` (:mod:`repro.analysis.plan_lint`) — schema-dataflow checks
  over logical plans, run by the optimizer before execution.
* ``AG2xx`` (:mod:`repro.analysis.agent_lint`) — docstring/signature
  agreement for registered tools and ``{{var}}`` template validity.
* ``CG3xx`` (:mod:`repro.analysis.codegen_lint`) — AST checks over
  generated programs and structural checks over exported notebooks.
* ``OB4xx`` (:mod:`repro.analysis.obs_lint`) — span naming/attribute
  conventions over finalized execution traces, event conventions
  over finalized provenance graphs, and the wall-clock layering rule
  (engine source must route operational timing through
  :mod:`repro.obs.telemetry`).
* ``CC5xx`` (:mod:`repro.analysis.concurrency`) — guarded-by lock
  discipline (``_GUARDED_BY`` maps), worker-shared state, and
  nondeterminism sources (wall clock, entropy, ``id()`` leaks,
  unordered iteration) over engine source and generated programs;
  its dynamic half is the runtime lock sanitizer
  (:mod:`repro.analysis.sanitizer`).
* ``SV6xx`` (:mod:`repro.analysis.server_lint`) — service-layer
  tenancy discipline: HTTP handlers must reach tenant state
  (registries, workspaces, sessions, budgets) through
  ``SessionStore.acquire``.

``repro lint`` (the CLI) drives all three; see ``docs/diagnostics.md``
for the full rule table.
"""

from repro.analysis.diagnostics import (
    DEFAULT_CONFIG,
    Diagnostic,
    Emitter,
    LintConfig,
    LintError,
    LintResult,
    Rule,
    Severity,
    all_rules,
    get_rule,
    register_rule,
)

# Importing the analyzer modules registers their rules.
from repro.analysis.plan_lint import lint_plan
from repro.analysis.agent_lint import (
    lint_registry,
    lint_template,
    lint_tool,
)
from repro.analysis.codegen_lint import (
    lint_notebook,
    lint_program,
    lint_workspace_steps,
)
from repro.analysis.obs_lint import (
    lint_provenance,
    lint_source_wallclock,
    lint_trace,
)
from repro.analysis.concurrency import lint_source_concurrency
from repro.analysis.server_lint import lint_source_tenancy
from repro.analysis.sanitizer import SanitizerReport, sanitize

__all__ = [
    "DEFAULT_CONFIG",
    "Diagnostic",
    "Emitter",
    "LintConfig",
    "LintError",
    "LintResult",
    "Rule",
    "Severity",
    "all_rules",
    "get_rule",
    "register_rule",
    "lint_plan",
    "lint_registry",
    "lint_template",
    "lint_tool",
    "lint_notebook",
    "lint_program",
    "lint_provenance",
    "lint_source_concurrency",
    "lint_source_tenancy",
    "lint_source_wallclock",
    "lint_trace",
    "lint_workspace_steps",
    "SanitizerReport",
    "sanitize",
]
