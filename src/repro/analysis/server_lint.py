"""pz-lint ``SV6xx``: service-layer tenancy discipline.

The multi-tenant server (:mod:`repro.server`) has one load-bearing
invariant: *every* piece of tenant state — the per-tenant run registry,
workspaces, chat sessions, budgets — is reached through
:meth:`~repro.server.store.SessionStore.acquire`, which hands the
tenant's state out with its lock held.  A handler that constructs a
``RunRegistry`` directly, or reaches into ``.workspace`` / ``.sessions``
without acquiring, bypasses both the per-tenant lock *and* the per-tenant
root — the classic way cross-tenant leaks (one tenant's runs landing in
another's registry, or in the global ``.repro/``) creep in.

Rules:

* ``SV601`` — an HTTP handler function (name matching ``do_<VERB>``,
  ``handle_*``, or ``_handle_*``) touches a tenant-state primitive — a
  ``RunRegistry(...)`` construction, or an attribute access named
  ``workspace`` / ``sessions`` / ``registry`` / ``budget`` — outside a
  ``with <store>.acquire(...):`` block.

A trailing ``# tenancy: ok(<reason>)`` comment suppresses SV601 on that
line — the reason is mandatory, mirroring the CC-family escape hatches.

Like the other source families this is purely AST-based (nothing is
executed) and runs automatically as part of
:func:`~repro.analysis.codegen_lint.lint_program`, so
``repro lint src/repro/server`` — and CI — checks the real handlers.
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional

from repro.analysis.diagnostics import (
    Emitter,
    LintConfig,
    LintResult,
    Severity,
    register_rule,
)

register_rule(
    "SV601", "tenant-state-outside-acquire",
    "a server handler touches tenant state (RunRegistry/workspace/"
    "sessions/budget) outside a 'with store.acquire(...)' block",
    Severity.ERROR,
)

__all__ = ["lint_source_tenancy"]

#: Function names treated as HTTP handlers (stdlib ``do_GET`` style and
#: the routed ``_handle_*`` convention).
_HANDLER_RE = re.compile(r"^(do_[A-Z]+|_?handle_\w+)$")

#: Attribute names that reach into tenant state.
_TENANT_ATTRS = frozenset({"workspace", "sessions", "registry", "budget"})


def _pragma(source_lines: List[str], lineno: int) -> bool:
    if not 1 <= lineno <= len(source_lines):
        return False
    text = source_lines[lineno - 1]
    return "# tenancy: ok(" in text or "# tenancy: ok " in text


def _is_acquire_with(node: ast.With) -> bool:
    """Does this ``with`` acquire tenant state (``<x>.acquire(...)``)?"""
    for item in node.items:
        expr = item.context_expr
        if (isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and expr.func.attr == "acquire"):
            return True
    return False


class _HandlerVisitor(ast.NodeVisitor):
    """Walks one handler body tracking acquire-with nesting depth."""

    def __init__(self, emitter: Emitter, source_lines: List[str],
                 filename: str, handler: str):
        self.emitter = emitter
        self.source_lines = source_lines
        self.filename = filename
        self.handler = handler
        self.depth = 0

    def _flag(self, node: ast.AST, what: str) -> None:
        if _pragma(self.source_lines, node.lineno):
            return
        self.emitter.emit(
            "SV601",
            f"handler {self.handler}() touches {what} outside "
            "'with store.acquire(<tenant>)'; route all tenant state "
            "through SessionStore acquisition (or annotate "
            "'# tenancy: ok(<reason>)')",
            location=f"{self.filename}:{node.lineno}",
        )

    def visit_With(self, node: ast.With) -> None:
        acquired = _is_acquire_with(node)
        if acquired:
            self.depth += 1
        self.generic_visit(node)
        if acquired:
            self.depth -= 1

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name == "RunRegistry" and self.depth == 0:
            self._flag(node, "a RunRegistry directly")
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr in _TENANT_ATTRS and self.depth == 0:
            self._flag(node, f"tenant attribute '.{node.attr}'")
        self.generic_visit(node)

    # Nested function/class definitions get their own handler check
    # (or none); don't double-report their bodies at this depth.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        return

    def run(self, node: ast.FunctionDef) -> None:
        for statement in node.body:
            self.visit(statement)


def lint_source_tenancy(
    source: str,
    filename: str = "<source>",
    config: Optional[LintConfig] = None,
    result: Optional[LintResult] = None,
) -> LintResult:
    """Run the SV6xx analysis over one module's source text.

    Only functions named like HTTP handlers are examined, so ordinary
    code (including :mod:`repro.server.store` itself, whose methods
    legitimately manage the locks) is never flagged.
    """
    result = result if result is not None else LintResult()
    emitter = Emitter(result, config)
    try:
        tree = ast.parse(source)
    except (SyntaxError, ValueError):
        return result
    source_lines = source.splitlines()
    for node in ast.walk(tree):
        if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and _HANDLER_RE.match(node.name)):
            visitor = _HandlerVisitor(
                emitter, source_lines, filename, node.name)
            visitor.run(node)
    return result
