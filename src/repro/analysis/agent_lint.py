"""Agent lint (``AG2xx``): tool definitions and code templates.

The reasoning agent decides *when and how* to call a tool purely from its
docstring (summary + ``Args:`` section), so a drifted docstring silently
degrades the agent.  These rules cross-check every registered ``@tool()``
docstring against the real signature, and statically scan
:class:`~repro.agent.code_tools.CodeTool` templates for ``{{variable}}``
placeholders that can never resolve at runtime (reusing the template
engine's own ``_PLACEHOLDER_RE`` / ``_FILTERS``).
"""

from __future__ import annotations

import difflib
import inspect
from typing import Iterable, List, Optional, Set

from repro.agent.code_tools import CodeTool
from repro.agent.templating import _FILTERS, _PLACEHOLDER_RE
from repro.agent.tools import (
    Tool,
    ToolRegistry,
    _PARAM_LINE_RE,
    _split_sections,
)
from repro.analysis.diagnostics import (
    Emitter,
    LintConfig,
    LintResult,
    Severity,
    register_rule,
)

register_rule(
    "AG201", "doc-unknown-param",
    "the docstring Args section documents a parameter the signature "
    "does not have",
    Severity.ERROR,
)
register_rule(
    "AG202", "undocumented-param",
    "a model-visible parameter has no Args entry",
    Severity.WARNING,
)
register_rule(
    "AG203", "missing-summary",
    "the tool has no docstring summary for the agent to read",
    Severity.WARNING,
)
register_rule(
    "AG204", "undocumented-return",
    "the tool returns a value but documents no Returns section",
    Severity.INFO,
)
register_rule(
    "AG205", "template-unknown-variable",
    "a code template references a variable that is neither a parameter "
    "nor present in the execution environment",
    Severity.ERROR,
)
register_rule(
    "AG206", "template-unknown-filter",
    "a code template applies a filter the template engine does not have",
    Severity.ERROR,
)


def _documented_params(docstring: str) -> List[str]:
    sections = _split_sections(docstring)
    names = []
    for line in sections["args"].splitlines():
        match = _PARAM_LINE_RE.match(line)
        if match:
            names.append(match.group(1))
    return names


def lint_tool(tool: Tool, config: Optional[LintConfig] = None) -> LintResult:
    """Lint one tool: docstring/signature agreement or template validity."""
    result = LintResult()
    emitter = Emitter(result, config)
    location = f"tool {tool.name!r}"

    if not tool.spec.summary.strip():
        emitter.emit(
            "AG203",
            "tool has no summary; the agent cannot decide when to use it",
            location=location,
            hint="start the docstring with one sentence describing the tool",
        )

    if isinstance(tool, CodeTool):
        available = (
            {p.name for p in tool.spec.parameters}
            | set(tool.environment)
            | {"agent"}  # injected by CodeTool.invoke
        )
        result.extend(
            lint_template(tool.template, available, config=config,
                          location=location)
        )
        return result

    _lint_docstring(tool, emitter, location)
    return result


def _lint_docstring(tool: Tool, emitter: Emitter, location: str) -> None:
    docstring = inspect.getdoc(tool.fn) or ""
    documented = _documented_params(docstring)
    signature_params = [p.name for p in tool.spec.parameters]

    for name in documented:
        if name in signature_params:
            continue
        close = difflib.get_close_matches(name, signature_params, n=1)
        hint = (
            f"did you mean {close[0]!r}? the parameter may have been renamed"
            if close else f"signature parameters: {signature_params}"
        )
        emitter.emit(
            "AG201",
            f"Args documents {name!r}, which is not a parameter of the "
            f"signature ({signature_params})",
            location=location,
            hint=hint,
        )

    for name in signature_params:
        if name not in documented:
            emitter.emit(
                "AG202",
                f"parameter {name!r} has no Args entry; the agent sees an "
                "undocumented input",
                location=location,
                hint=f"add '{name}: <description>' to the Args section",
            )

    if not tool.spec.returns:
        try:
            returns = inspect.signature(tool.fn).return_annotation
        except (TypeError, ValueError):
            returns = inspect.Signature.empty
        if returns not in (inspect.Signature.empty, None, type(None)):
            emitter.emit(
                "AG204",
                "the tool returns a value but the docstring has no "
                "Returns section",
                location=location,
                hint="add a 'Returns:' section describing the result",
            )


def lint_template(
    template: str,
    available: Iterable[str],
    config: Optional[LintConfig] = None,
    location: str = "template",
) -> LintResult:
    """Statically scan ``{{var | filter}}`` placeholders in a template.

    ``available`` is the set of variable roots that will exist at render
    time (tool parameters plus the execution environment).
    """
    result = LintResult()
    emitter = Emitter(result, config)
    known: Set[str] = set(available)
    reported_vars: Set[str] = set()
    reported_filters: Set[str] = set()

    for match in _PLACEHOLDER_RE.finditer(template):
        expression = match.group(1)
        path, _, filters = expression.partition("|")
        root = path.strip().split(".")[0]
        if root and root not in known and root not in reported_vars:
            reported_vars.add(root)
            close = difflib.get_close_matches(root, sorted(known), n=1)
            hint = (
                f"did you mean {close[0]!r}?" if close
                else f"available variables: {sorted(known)}"
            )
            emitter.emit(
                "AG205",
                f"template variable {{{{ {root} }}}} is neither a "
                f"parameter nor available at runtime "
                f"(available: {sorted(known)})",
                location=location,
                hint=hint,
            )
        for name in filters.split("|"):
            name = name.strip()
            if name and name not in _FILTERS and name not in reported_filters:
                reported_filters.add(name)
                emitter.emit(
                    "AG206",
                    f"unknown template filter {name!r}; "
                    f"available: {sorted(_FILTERS)}",
                    location=location,
                )
    return result


def lint_registry(registry: ToolRegistry,
                  config: Optional[LintConfig] = None) -> LintResult:
    """Lint every tool in a registry."""
    result = LintResult()
    for name in registry.names():
        result.extend(lint_tool(registry.get(name), config=config))
    return result
