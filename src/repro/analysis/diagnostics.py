"""Diagnostics core for pz-lint, the repo's static analyzers.

PalimpChat's users compose pipelines through chat, so mistakes must
surface *before* an expensive plan executes — not as mid-run exceptions.
The analyzers in this package (:mod:`repro.analysis.plan_lint`,
:mod:`repro.analysis.agent_lint`, :mod:`repro.analysis.codegen_lint`)
share this module's vocabulary:

* :class:`Diagnostic` — one finding: rule code, severity, message,
  location, optional fix hint.
* :class:`Rule` / the rule registry — every rule code (``PZ1xx`` plan
  rules, ``AG2xx`` agent/tool rules, ``CG3xx`` codegen/notebook rules)
  is registered once with its default severity and a one-line summary.
* :class:`LintConfig` — per-rule enable/disable and severity overrides.
* :class:`LintResult` — an ordered collection of diagnostics with
  rendering and severity accessors.
* :class:`LintError` — raised by the optimizer when a plan has
  error-level diagnostics; carries the full :class:`LintResult`.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Optional

from repro.core.errors import PlanError


class Severity(enum.Enum):
    """How bad a finding is.  Errors block execution; warnings don't."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]

    @classmethod
    def parse(cls, value) -> "Severity":
        if isinstance(value, cls):
            return value
        needle = str(value).strip().lower()
        for member in cls:
            if needle == member.value:
                return member
        raise ValueError(f"unknown severity {value!r}")

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding."""

    code: str
    severity: Severity
    message: str
    location: str = ""
    hint: str = ""

    def render(self) -> str:
        parts = [f"{self.severity.value}[{self.code}]"]
        if self.location:
            parts.append(f"{self.location}:")
        parts.append(self.message)
        text = " ".join(parts)
        if self.hint:
            text += f"  (hint: {self.hint})"
        return text

    def to_dict(self) -> Dict[str, str]:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "location": self.location,
            "hint": self.hint,
        }


@dataclass(frozen=True)
class Rule:
    """A registered lint rule: identity, default severity, one-liner."""

    code: str
    name: str
    summary: str
    severity: Severity
    family: str = ""

    def describe(self) -> str:
        return f"{self.code} ({self.name}, {self.severity.value}): {self.summary}"


_RULES: Dict[str, Rule] = {}


def register_rule(code: str, name: str, summary: str,
                  severity: Severity) -> Rule:
    """Register a rule code (module import time).  Codes are unique."""
    if code in _RULES:
        raise ValueError(f"lint rule {code!r} is already registered")
    family = code.rstrip("0123456789")
    rule = Rule(code=code, name=name, summary=summary,
                severity=severity, family=family)
    _RULES[code] = rule
    return rule


def get_rule(code: str) -> Rule:
    try:
        return _RULES[code]
    except KeyError:
        raise KeyError(
            f"unknown lint rule {code!r}; known: {sorted(_RULES)}"
        ) from None


def all_rules() -> List[Rule]:
    """Every registered rule, ordered by code."""
    return [_RULES[code] for code in sorted(_RULES)]


@dataclass(frozen=True)
class LintConfig:
    """Which rules run and at what severity.

    ``disabled`` entries may be exact codes (``"PZ102"``) or prefixes
    (``"PZ"`` disables the whole plan-lint family).
    """

    disabled: frozenset = frozenset()
    severity_overrides: Dict[str, Severity] = field(default_factory=dict)

    @classmethod
    def parse(cls, disable: Optional[str] = None) -> "LintConfig":
        """Build a config from a comma-separated ``--disable`` string."""
        codes = frozenset(
            token.strip().upper()
            for token in (disable or "").split(",")
            if token.strip()
        )
        return cls(disabled=codes)

    def is_enabled(self, code: str) -> bool:
        return not any(
            code == entry or code.startswith(entry)
            for entry in self.disabled
        )

    def severity_for(self, code: str) -> Severity:
        override = self.severity_overrides.get(code)
        return override if override is not None else get_rule(code).severity


DEFAULT_CONFIG = LintConfig()


class LintResult:
    """An ordered collection of diagnostics."""

    def __init__(self, diagnostics: Optional[Iterable[Diagnostic]] = None):
        self.diagnostics: List[Diagnostic] = list(diagnostics or [])

    # -- building ---------------------------------------------------------

    def add(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def extend(self, other: "LintResult",
               location_prefix: str = "") -> None:
        for diagnostic in other.diagnostics:
            if location_prefix:
                where = (
                    f"{location_prefix}{diagnostic.location}"
                    if diagnostic.location else location_prefix.rstrip(": ")
                )
                diagnostic = replace(diagnostic, location=where)
            self.diagnostics.append(diagnostic)

    # -- accessors --------------------------------------------------------

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def infos(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.INFO]

    @property
    def ok(self) -> bool:
        """No error-level findings (warnings and infos are allowed)."""
        return not self.errors

    def codes(self) -> List[str]:
        return [d.code for d in self.diagnostics]

    def sorted(self) -> "LintResult":
        return LintResult(
            sorted(self.diagnostics,
                   key=lambda d: (d.severity.rank, d.code, d.location))
        )

    # -- rendering --------------------------------------------------------

    def render(self) -> str:
        if not self.diagnostics:
            return "no findings"
        return "\n".join(d.render() for d in self.diagnostics)

    def summary(self) -> str:
        return (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.infos)} info(s)"
        )

    def by_family(self) -> Dict[str, List[Diagnostic]]:
        """Diagnostics grouped by rule family (``PZ``, ``AG``, ...)."""
        grouped: Dict[str, List[Diagnostic]] = {}
        for diagnostic in self.diagnostics:
            family = diagnostic.code.rstrip("0123456789")
            grouped.setdefault(family, []).append(diagnostic)
        return grouped

    def to_json(self) -> str:
        families = {
            family: {
                "findings": len(diagnostics),
                "errors": sum(
                    1 for d in diagnostics if d.severity is Severity.ERROR
                ),
                "warnings": sum(
                    1 for d in diagnostics if d.severity is Severity.WARNING
                ),
            }
            for family, diagnostics in sorted(self.by_family().items())
        }
        return json.dumps(
            {
                "diagnostics": [d.to_dict() for d in self.diagnostics],
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "infos": len(self.infos),
                "families": families,
            },
            indent=2,
        )

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __repr__(self) -> str:
        return f"LintResult({self.summary()})"


class Emitter:
    """Helper the analyzers use to emit config-filtered diagnostics."""

    def __init__(self, result: LintResult,
                 config: Optional[LintConfig] = None):
        self.result = result
        self.config = config or DEFAULT_CONFIG

    def emit(self, code: str, message: str, location: str = "",
             hint: str = "") -> None:
        if not self.config.is_enabled(code):
            return
        self.result.add(
            Diagnostic(
                code=code,
                severity=self.config.severity_for(code),
                message=message,
                location=location,
                hint=hint,
            )
        )


class LintError(PlanError):
    """A plan failed lint with error-level diagnostics.

    Subclasses :class:`~repro.core.errors.PlanError` so existing plan
    validation handlers catch it; carries the :class:`LintResult` so
    callers (the chat layer, the CLI) can render every finding.
    """

    def __init__(self, result: LintResult):
        self.result = result
        errors = result.errors
        super().__init__(
            f"plan lint found {len(errors)} error(s):\n"
            + "\n".join(d.render() for d in errors)
        )
