"""Codegen lint (``CG3xx``): generated programs and exported notebooks.

:mod:`repro.chat.codegen` emits runnable Palimpzest programs and the
Beaker-style notebook exports them together with the chat history.  Both
artifacts are *code the user will re-run later*, so they are AST-checked
here without executing anything:

* programs may only call the public ``repro`` API (``import repro as pz``)
  with valid attribute names and argument shapes, and may not reference
  undefined names at module level;
* ``.ipynb`` documents must be structurally valid (nbformat 4, kernelspec
  metadata, well-formed cells) and carry a monotonically replayable
  generated-program history (each generated snippet extends the previous
  one, so replaying the cells top to bottom reproduces the session).
"""

from __future__ import annotations

import ast
import builtins
import difflib
import inspect
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Union

from repro.analysis.diagnostics import (
    Emitter,
    LintConfig,
    LintResult,
    Severity,
    register_rule,
)

register_rule(
    "CG301", "program-syntax",
    "the generated program does not parse",
    Severity.ERROR,
)
register_rule(
    "CG302", "unknown-api",
    "the program references a repro API attribute that does not exist",
    Severity.ERROR,
)
register_rule(
    "CG303", "bad-call",
    "a repro API call has the wrong argument shape",
    Severity.ERROR,
)
register_rule(
    "CG304", "undefined-name",
    "the program uses a module-level name that is never defined",
    Severity.ERROR,
)
register_rule(
    "CG305", "invalid-step",
    "a workspace step carries an unknown policy/cardinality key",
    Severity.ERROR,
)
register_rule(
    "CG306", "load-failure",
    "a lint target failed to load/execute",
    Severity.ERROR,
)
register_rule(
    "CG310", "notebook-format",
    "the notebook is missing nbformat/kernelspec metadata",
    Severity.ERROR,
)
register_rule(
    "CG311", "notebook-cell",
    "a notebook cell is structurally invalid",
    Severity.ERROR,
)
register_rule(
    "CG312", "notebook-history",
    "the generated-program history is not monotonically replayable",
    Severity.WARNING,
)

#: Header line every generated pipeline program starts with.
GENERATED_HEADER = "import repro as pz"


def _public_api() -> Dict[str, Any]:
    import repro

    return {name: getattr(repro, name) for name in repro.__all__}


def _dataset_methods() -> Dict[str, inspect.Signature]:
    from repro.core.dataset import Dataset

    methods = {}
    for name, member in vars(Dataset).items():
        if name.startswith("_") or not callable(member):
            continue
        methods[name] = inspect.signature(member)
    return methods


def _bindable_signature(obj: Any) -> Optional[inspect.Signature]:
    try:
        return inspect.signature(obj)
    except (TypeError, ValueError):
        return None


def _check_call_shape(signature: inspect.Signature, node: ast.Call,
                      skip_self: bool = False) -> Optional[str]:
    """Bind placeholder arguments; return the TypeError message if any."""
    positional: List[Any] = [None] * len(node.args)
    if any(isinstance(a, ast.Starred) for a in node.args):
        return None  # *args splat: shape unknown statically
    keywords = {}
    for keyword in node.keywords:
        if keyword.arg is None:
            return None  # **kwargs splat
        keywords[keyword.arg] = None
    if skip_self:
        positional = [None] + positional
    try:
        signature.bind(*positional, **keywords)
    except TypeError as exc:
        return str(exc)
    return None


class _ModuleNames(ast.NodeVisitor):
    """Collects module-level bindings and checks module-level name loads.

    Function/class bodies are skipped: generated programs are flat, and
    example scripts keep their logic inside ``main()`` where full scope
    analysis is out of lint's scope.
    """

    def __init__(self, emitter: Emitter, filename: str):
        self.emitter = emitter
        self.filename = filename
        self.defined: Set[str] = {
            "__name__", "__file__", "__doc__", "__builtins__",
        }
        self.defined.update(dir(builtins))

    def run(self, module: ast.Module) -> None:
        for statement in module.body:
            self._check_loads(statement)
            self._bind(statement)

    # -- bindings ---------------------------------------------------------

    def _bind(self, statement: ast.stmt) -> None:
        if isinstance(statement, (ast.Import, ast.ImportFrom)):
            for alias in statement.names:
                name = alias.asname or alias.name.split(".")[0]
                self.defined.add(name)
        elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.ClassDef)):
            self.defined.add(statement.name)
        elif isinstance(statement, (ast.Assign, ast.AugAssign,
                                    ast.AnnAssign)):
            targets = (
                statement.targets if isinstance(statement, ast.Assign)
                else [statement.target]
            )
            for target in targets:
                for node in ast.walk(target):
                    if isinstance(node, ast.Name):
                        self.defined.add(node.id)
        elif isinstance(statement, (ast.For, ast.AsyncFor)):
            for node in ast.walk(statement.target):
                if isinstance(node, ast.Name):
                    self.defined.add(node.id)
            for sub in statement.body + statement.orelse:
                self._check_loads(sub)
                self._bind(sub)
        elif isinstance(statement, (ast.If, ast.While)):
            for sub in statement.body + statement.orelse:
                self._check_loads(sub)
                self._bind(sub)
        elif isinstance(statement, (ast.With, ast.AsyncWith)):
            for item in statement.items:
                if item.optional_vars is not None:
                    for node in ast.walk(item.optional_vars):
                        if isinstance(node, ast.Name):
                            self.defined.add(node.id)
            for sub in statement.body:
                self._check_loads(sub)
                self._bind(sub)
        elif isinstance(statement, ast.Try):
            for sub in (statement.body + statement.orelse
                        + statement.finalbody):
                self._check_loads(sub)
                self._bind(sub)
            for handler in statement.handlers:
                if handler.name:
                    self.defined.add(handler.name)
                for sub in handler.body:
                    self._check_loads(sub)
                    self._bind(sub)

    # -- loads ------------------------------------------------------------

    def _check_loads(self, statement: ast.stmt) -> None:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef, ast.Import,
                                  ast.ImportFrom, ast.If, ast.While,
                                  ast.For, ast.AsyncFor, ast.With,
                                  ast.AsyncWith, ast.Try)):
            # Compound statements recurse through _bind; defs are skipped.
            if isinstance(statement, (ast.If, ast.While)):
                self._check_expression_loads(statement.test, statement)
            return
        self._check_expression_loads(statement, statement)

    def _check_expression_loads(self, tree: ast.AST,
                                statement: ast.stmt) -> None:
        for node in ast.walk(tree):
            if isinstance(node, (ast.Lambda, ast.ListComp, ast.SetComp,
                                 ast.DictComp, ast.GeneratorExp)):
                return  # nested scopes: out of lint's reach
        for node in ast.walk(tree):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                if node.id not in self.defined:
                    close = difflib.get_close_matches(
                        node.id, sorted(self.defined), n=1
                    )
                    hint = (
                        f"did you mean {close[0]!r}?" if close else
                        "define the name before this statement"
                    )
                    self.emitter.emit(
                        "CG304",
                        f"name {node.id!r} is used but never defined",
                        location=f"{self.filename}:{node.lineno}",
                        hint=hint,
                    )
                    self.defined.add(node.id)  # report each name once


def lint_program(
    source: str,
    config: Optional[LintConfig] = None,
    filename: str = "<program>",
) -> LintResult:
    """AST-lint a generated (or example) program without executing it."""
    result = LintResult()
    emitter = Emitter(result, config)

    try:
        module = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        emitter.emit(
            "CG301",
            f"program does not parse: {exc.msg}",
            location=f"{filename}:{exc.lineno or 0}",
        )
        return result

    api = _public_api()
    dataset_methods = _dataset_methods()
    aliases = _repro_aliases(module)

    _lint_api_usage(module, aliases, api, emitter, filename)
    _lint_dataset_calls(module, aliases, dataset_methods, emitter, filename)
    _ModuleNames(emitter, filename).run(module)
    # Generated programs get the same concurrency/determinism scrutiny as
    # the engine's own source (CC5xx): a program that reads the wall clock
    # or iterates a set into its output breaks run-to-run reproducibility
    # just as surely as an engine bug would.
    from repro.analysis.concurrency import lint_source_concurrency

    lint_source_concurrency(
        source, filename=filename, config=config, result=result
    )
    # Service-layer tenancy discipline (SV6xx): HTTP handler functions
    # must reach tenant state through SessionStore.acquire().
    from repro.analysis.server_lint import lint_source_tenancy

    lint_source_tenancy(
        source, filename=filename, config=config, result=result
    )
    # Telemetry layering (OB403): the package's own modules must route
    # wall-clock reads through repro.obs.telemetry; no-op for generated
    # programs (scoped to repro/ source paths).
    from repro.analysis.obs_lint import lint_source_wallclock

    lint_source_wallclock(
        source, filename=filename, config=config, result=result
    )
    return result


def _repro_aliases(module: ast.Module) -> Set[str]:
    """Names the program binds to the ``repro`` package (usually ``pz``)."""
    aliases: Set[str] = set()
    for node in ast.walk(module):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro":
                    aliases.add(alias.asname or "repro")
    return aliases


def _lint_api_usage(module: ast.Module, aliases: Set[str],
                    api: Dict[str, Any], emitter: Emitter,
                    filename: str) -> None:
    """CG302 unknown attributes, CG303 bad argument shapes on pz.*."""
    from repro.core.cardinality import Cardinality

    checked_calls: Set[int] = set()
    for node in ast.walk(module):
        if not isinstance(node, ast.Attribute):
            continue
        # pz.Cardinality.<member>
        if (
            isinstance(node.value, ast.Attribute)
            and isinstance(node.value.value, ast.Name)
            and node.value.value.id in aliases
            and node.value.attr == "Cardinality"
        ):
            if node.attr not in Cardinality.__members__:
                emitter.emit(
                    "CG302",
                    f"Cardinality has no member {node.attr!r}; "
                    f"members: {sorted(Cardinality.__members__)}",
                    location=f"{filename}:{node.lineno}",
                )
            continue
        if not (isinstance(node.value, ast.Name)
                and node.value.id in aliases):
            continue
        alias = node.value.id
        if node.attr not in api:
            close = difflib.get_close_matches(node.attr, sorted(api), n=1)
            hint = (
                f"did you mean {alias}.{close[0]}?" if close
                else "see repro.__all__ for the public API"
            )
            emitter.emit(
                "CG302",
                f"{alias}.{node.attr} is not part of the public repro API",
                location=f"{filename}:{node.lineno}",
                hint=hint,
            )
            continue

    for node in ast.walk(module):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in aliases
                and func.attr in api):
            continue
        if id(node) in checked_calls:
            continue
        checked_calls.add(id(node))
        target = api[func.attr]
        signature = _bindable_signature(target)
        if signature is None:
            continue
        problem = _check_call_shape(signature, node)
        if problem:
            emitter.emit(
                "CG303",
                f"{func.value.id}.{func.attr}(...) call does not match "
                f"the API signature: {problem}",
                location=f"{filename}:{node.lineno}",
                hint=f"signature: {func.attr}{signature}",
            )


def _lint_dataset_calls(module: ast.Module, aliases: Set[str],
                        methods: Dict[str, inspect.Signature],
                        emitter: Emitter, filename: str) -> None:
    """Track module-level Dataset variables; check fluent method calls."""
    dataset_vars: Set[str] = set()

    def is_dataset_expr(node: ast.AST) -> bool:
        if isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in aliases
                    and func.attr == "Dataset"):
                return True
            if (isinstance(func, ast.Attribute)
                    and func.attr in methods
                    and is_dataset_expr(func.value)):
                return True
        if isinstance(node, ast.Name) and node.id in dataset_vars:
            return True
        return False

    for statement in module.body:
        for node in ast.walk(statement):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            receiver_is_dataset = (
                (isinstance(func.value, ast.Name)
                 and func.value.id in dataset_vars)
                or is_dataset_expr(func.value)
            )
            if not receiver_is_dataset:
                continue
            if func.attr not in methods:
                close = difflib.get_close_matches(
                    func.attr, sorted(methods), n=1
                )
                hint = (
                    f"did you mean .{close[0]}(...)?" if close
                    else f"Dataset methods: {sorted(methods)}"
                )
                emitter.emit(
                    "CG302",
                    f"Dataset has no method {func.attr!r}",
                    location=f"{filename}:{node.lineno}",
                    hint=hint,
                )
                continue
            problem = _check_call_shape(
                methods[func.attr], node, skip_self=True
            )
            if problem:
                emitter.emit(
                    "CG303",
                    f"dataset.{func.attr}(...) call does not match the "
                    f"API signature: {problem}",
                    location=f"{filename}:{node.lineno}",
                    hint=f"signature: {func.attr}{methods[func.attr]}",
                )
        if isinstance(statement, ast.Assign):
            if is_dataset_expr(statement.value):
                for target in statement.targets:
                    if isinstance(target, ast.Name):
                        dataset_vars.add(target.id)


# ---------------------------------------------------------------------------
# Workspace step validation (CG305) — the static face of the codegen
# strictness fix (generate_program raises CodegenError on the same keys).
# ---------------------------------------------------------------------------


def lint_workspace_steps(steps: Sequence,
                         config: Optional[LintConfig] = None) -> LintResult:
    """Check logged pipeline steps for unknown policy/cardinality keys."""
    from repro.chat.codegen import _CARDINALITY_EXPR, _POLICY_EXPR

    result = LintResult()
    emitter = Emitter(result, config)
    for index, step in enumerate(steps):
        location = f"step[{index}] {step.kind}"
        if step.kind == "policy":
            target = str(step.params.get("target", "quality")).lower()
            if target not in _POLICY_EXPR:
                emitter.emit(
                    "CG305",
                    f"unknown optimization target {target!r}; "
                    f"expected one of {sorted(_POLICY_EXPR)}",
                    location=location,
                )
        elif step.kind == "convert":
            cardinality = str(
                step.params.get("cardinality", "one_to_one")
            ).lower()
            if cardinality not in _CARDINALITY_EXPR:
                emitter.emit(
                    "CG305",
                    f"unknown cardinality {cardinality!r}; "
                    f"expected one of {sorted(_CARDINALITY_EXPR)}",
                    location=location,
                )
    return result


# ---------------------------------------------------------------------------
# Notebook (.ipynb) validation.
# ---------------------------------------------------------------------------

_CELL_TYPES = {"markdown", "code"}


def lint_notebook(
    notebook: Union[Dict[str, Any], str, Path],
    config: Optional[LintConfig] = None,
) -> LintResult:
    """Validate an exported ``.ipynb`` document (dict, JSON text, or path)."""
    result = LintResult()
    emitter = Emitter(result, config)
    name = "notebook"

    if isinstance(notebook, Path) or (
        isinstance(notebook, str) and notebook.lstrip()[:1] != "{"
    ):
        path = Path(notebook)
        name = path.name
        try:
            notebook = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            emitter.emit(
                "CG310",
                f"cannot read notebook: {exc}",
                location=name,
            )
            return result
    elif isinstance(notebook, str):
        try:
            notebook = json.loads(notebook)
        except json.JSONDecodeError as exc:
            emitter.emit("CG310", f"notebook is not valid JSON: {exc}",
                         location=name)
            return result

    if not isinstance(notebook, dict):
        emitter.emit("CG310", "notebook must be a JSON object",
                     location=name)
        return result

    if notebook.get("nbformat") != 4:
        emitter.emit(
            "CG310",
            f"nbformat must be 4, got {notebook.get('nbformat')!r}",
            location=name,
        )
    kernelspec = (notebook.get("metadata") or {}).get("kernelspec") or {}
    for key in ("display_name", "language", "name"):
        if key not in kernelspec:
            emitter.emit(
                "CG310",
                f"metadata.kernelspec is missing {key!r}",
                location=name,
                hint="exported notebooks need a kernelspec so Jupyter "
                     "can replay them",
            )

    cells = notebook.get("cells")
    if not isinstance(cells, list):
        emitter.emit("CG310", "notebook has no cells list", location=name)
        return result

    generated: List[List[str]] = []
    for index, cell in enumerate(cells):
        location = f"{name} cell[{index}]"
        if not isinstance(cell, dict):
            emitter.emit("CG311", "cell is not an object", location=location)
            continue
        cell_type = cell.get("cell_type")
        if cell_type not in _CELL_TYPES:
            emitter.emit(
                "CG311",
                f"unknown cell_type {cell_type!r}; "
                f"expected one of {sorted(_CELL_TYPES)}",
                location=location,
            )
            continue
        source = cell.get("source")
        if not isinstance(source, (str, list)) or (
            isinstance(source, list)
            and not all(isinstance(line, str) for line in source)
        ):
            emitter.emit(
                "CG311",
                "cell source must be a string or a list of strings",
                location=location,
            )
            continue
        text = source if isinstance(source, str) else "".join(source)
        if cell_type == "markdown":
            if "outputs" in cell or "execution_count" in cell:
                emitter.emit(
                    "CG311",
                    "markdown cells may not carry outputs or "
                    "execution_count",
                    location=location,
                )
            continue
        # code cell
        for key in ("outputs", "execution_count"):
            if key not in cell:
                emitter.emit(
                    "CG311",
                    f"code cell is missing {key!r}",
                    location=location,
                )
        if text.startswith(GENERATED_HEADER):
            lines = text.rstrip().splitlines()
            if generated and lines[:len(generated[-1])] != generated[-1]:
                emitter.emit(
                    "CG312",
                    "generated program does not extend the previous one; "
                    "replaying the notebook top to bottom will not "
                    "reproduce the session monotonically",
                    location=location,
                    hint="a pipeline reset mid-session breaks monotonic "
                         "replay; export before resetting to keep a "
                         "replayable artifact",
                )
            generated.append(lines)
            result.extend(
                lint_program(text, config=config,
                             filename=f"{name}:cell[{index}]")
            )
    return result
