"""Runtime lock sanitizer: the dynamic half of the ``CC5xx`` family.

The static guarded-by checker (:mod:`repro.analysis.concurrency`) proves
what the *source* says about lock discipline; this module checks what
actually happens at runtime.  Under ``sanitize()``:

* every ``threading.Lock`` / ``threading.RLock`` *created inside the
  context* is wrapped so acquisitions and releases are observed;
* a cross-thread **lock-order graph** is recorded — an edge ``A -> B``
  means some thread acquired ``B`` while holding ``A``.  A cycle in
  that graph is a potential deadlock (threads taking the same locks in
  different orders), reported by :meth:`SanitizerReport.cycles`;
* classes that declare a ``_GUARDED_BY`` map get a ``__setattr__`` hook
  so every **write to a guarded attribute** is checked against the
  declared lock: if the current thread does not hold it (outside
  ``__init__``/``__new__``), an unguarded-write violation is recorded;
* the static declarations are **cross-checked against reality**:
  declared guards whose lock was never observed held around a guarded
  write surface in :attr:`SanitizerReport.unexercised`, so a test knows
  whether it actually exercised the annotation.

Usage — directly::

    with sanitize() as report:
        records, stats = Execute(dataset, executor="pipelined",
                                 max_workers=4)
    assert not report.violations
    assert not report.cycles()

or through the engine, which attaches the report to the stats::

    records, stats = Execute(dataset, executor="sharded", sanitize=True)
    print(stats.sanitizer.render())

The sanitizer observes, it never blocks: wrapped locks delegate to the
real primitive, so sanitized runs produce byte-identical records, stats,
traces, and provenance — the equivalence suite runs under it unchanged.

Scope and honesty notes: only locks *created* while the context is
active are wrapped (module-level locks created at import time cannot be
monkey-patched in CPython), and ``queue.Queue`` internals allocate
their locks through ``_thread.allocate_lock`` directly, so they stay
unwrapped.  That is the right scope: the graph contains exactly the
engine's own discipline locks, not the stdlib's.
"""

from __future__ import annotations

import sys
import threading
from typing import Dict, List, Optional, Set, Tuple

_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock


class _HeldState(threading.local):
    """Per-thread stack of lock labels currently held."""

    def __init__(self):
        self.stack: List[str] = []


class _Monitor:
    """Collects held-stacks, lock-order edges, and violations."""

    def __init__(self):
        self._held = _HeldState()
        self._meta = _REAL_LOCK()  # the monitor's own, never wrapped
        self.edges: Set[Tuple[str, str]] = set()
        self.acquired_labels: Set[str] = set()
        self.violations: List[str] = []
        self.guarded_writes: int = 0
        #: "Class.lock" guards observed held around a guarded write.
        self.exercised_guards: Set[str] = set()
        self._site_counts: Dict[str, int] = {}

    def label_for(self, site: str) -> str:
        """Unique label for one lock instance: ``file.py:lineno`` for the
        first lock created at a site, ``file.py:lineno#k`` after — two
        locks born on one line must not collapse into one graph node."""
        with self._meta:
            count = self._site_counts.get(site, 0) + 1
            self._site_counts[site] = count
        return site if count == 1 else f"{site}#{count}"

    def on_acquire(self, label: str) -> None:
        stack = self._held.stack
        with self._meta:
            self.acquired_labels.add(label)
            for held in stack:
                if held != label:
                    self.edges.add((held, label))
        stack.append(label)

    def on_release(self, label: str) -> None:
        stack = self._held.stack
        # Release order may not be LIFO (rare, but legal): drop the
        # innermost matching entry.
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == label:
                del stack[index]
                return

    def holds(self, label: str) -> bool:
        return label in self._held.stack

    def record_violation(self, message: str) -> None:
        with self._meta:
            if message not in self.violations:
                self.violations.append(message)

    def count_guarded_write(self, guard_key: str, held: bool) -> None:
        with self._meta:
            self.guarded_writes += 1
            if held:
                self.exercised_guards.add(guard_key)


class SanitizedLock:
    """Observing proxy around a real ``Lock``/``RLock``.

    Implements the full lock protocol plus the private
    ``_release_save``/``_acquire_restore``/``_is_owned`` trio so a
    ``threading.Condition`` built on a sanitized lock keeps working
    (RLock inners delegate; plain-Lock inners use Condition's
    documented fallback semantics).
    """

    def __init__(self, inner, label: str, monitor: _Monitor):
        self._inner = inner
        self._label = label
        self._monitor = monitor

    # -- lock protocol -------------------------------------------------
    def acquire(self, blocking: bool = True, timeout: float = -1):
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._monitor.on_acquire(self._label)
        return acquired

    def release(self):
        self._monitor.on_release(self._label)
        self._inner.release()

    def __enter__(self):
        return self.acquire()

    def __exit__(self, exc_type, exc_value, traceback):
        self.release()

    def locked(self):
        return self._inner.locked()

    # -- Condition support ---------------------------------------------
    def _release_save(self):
        self._monitor.on_release(self._label)
        inner = self._inner
        if hasattr(inner, "_release_save"):
            return inner._release_save()
        inner.release()
        return None

    def _acquire_restore(self, state):
        inner = self._inner
        if hasattr(inner, "_acquire_restore"):
            inner._acquire_restore(state)
        else:
            inner.acquire()
        self._monitor.on_acquire(self._label)

    def _is_owned(self):
        inner = self._inner
        if hasattr(inner, "_is_owned"):
            return inner._is_owned()
        if inner.acquire(False):
            inner.release()
            return False
        return True

    def __repr__(self):
        return f"<SanitizedLock {self._label} {self._inner!r}>"


def _check_guarded_write(instance, class_name: str, attr: str,
                         lock_attr: str, monitor: _Monitor) -> None:
    """Runtime CC501: is the declared lock held for this write?

    Called from the installed ``__setattr__`` hook, so the writing user
    frame is exactly two frames up.
    """
    caller = sys._getframe(2)
    if caller.f_code.co_name in ("__init__", "__new__") and \
            caller.f_locals.get("self") is instance:
        return  # the object is still under construction, not shared
    lock = getattr(instance, lock_attr, None)
    if not isinstance(lock, SanitizedLock):
        return  # lock created outside the sanitize window; unobservable
    guard_key = f"{class_name}.{lock_attr}"
    held = monitor.holds(lock._label)
    monitor.count_guarded_write(guard_key, held)
    if not held:
        where = (f"{caller.f_code.co_filename.rsplit('/', 1)[-1]}"
                 f":{caller.f_lineno}")
        monitor.record_violation(
            f"{class_name}.{attr} written at {where} without holding "
            f"{guard_key}"
        )


def _make_hook(class_name: str, guards: Dict[str, Tuple[str, str]],
               original, monitor: _Monitor):
    def __setattr__(instance, name, value):
        guard = guards.get(name)
        if guard is not None:
            _check_guarded_write(instance, class_name, name, guard[0],
                                 monitor)
        original(instance, name, value)
    return __setattr__


def _normalize_guard_map(guard_map: dict) -> Dict[str, Tuple[str, str]]:
    normalized: Dict[str, Tuple[str, str]] = {}
    for attr, spec in guard_map.items():
        if isinstance(spec, str):
            normalized[attr] = (spec, "all")
        elif isinstance(spec, (tuple, list)) and len(spec) == 2:
            normalized[attr] = (str(spec[0]), str(spec[1]))
    return normalized


def _guarded_classes() -> List[Tuple[type, Dict[str, Tuple[str, str]]]]:
    """Every imported ``repro`` class carrying a ``_GUARDED_BY`` map."""
    found: List[Tuple[type, Dict[str, Tuple[str, str]]]] = []
    seen: Set[type] = set()
    for module_name, module in list(sys.modules.items()):
        if not module_name.startswith("repro") or module is None:
            continue
        for attr_name in dir(module):
            obj = getattr(module, attr_name, None)
            if not isinstance(obj, type) or obj in seen:
                continue
            if getattr(obj, "__module__", None) != module_name:
                continue
            guard_map = obj.__dict__.get("_GUARDED_BY")
            if not isinstance(guard_map, dict) or not guard_map:
                continue
            normalized = _normalize_guard_map(guard_map)
            if normalized:
                seen.add(obj)
                found.append((obj, normalized))
    return found


class SanitizerReport:
    """What one sanitized run observed.

    Attributes:
        violations: unguarded guarded-attribute writes seen at runtime
            (the dynamic CC501 — empty on a disciplined engine).
        edges: the cross-thread lock-order graph as ``(held, acquired)``
            label pairs; labels are ``file.py:lineno`` creation sites.
        guarded_writes: how many guarded-attribute writes were checked.
            Zero means the run never touched guarded state — an
            ``assert not report.violations`` would be vacuous.
        unexercised: declared ``(class, attr, lock)`` triples never
            observed held around a guarded write — the cross-check of
            static ``_GUARDED_BY`` declarations against reality.
    """

    def __init__(self, monitor: _Monitor,
                 declared: Dict[str, Dict[str, Tuple[str, str]]]):
        self.violations: List[str] = list(monitor.violations)
        self.edges: List[Tuple[str, str]] = sorted(monitor.edges)
        self.guarded_writes: int = monitor.guarded_writes
        self.lock_count: int = len(monitor.acquired_labels)
        self.declared = declared
        self.unexercised: List[Tuple[str, str, str]] = sorted(
            (class_name, attr, lock)
            for class_name, attrs in declared.items()
            for attr, (lock, _mode) in attrs.items()
            if f"{class_name}.{lock}" not in monitor.exercised_guards
        )

    def cycles(self) -> List[List[str]]:
        """Cycles in the lock-order graph (potential deadlocks).

        Each cycle is a label list ``[a, b, ..., a]``; an empty result
        means every observed acquisition order is consistent.
        """
        graph: Dict[str, List[str]] = {}
        for src, dst in self.edges:
            graph.setdefault(src, []).append(dst)
            graph.setdefault(dst, [])
        WHITE, GREY, BLACK = 0, 1, 2
        color = {node: WHITE for node in graph}
        found: List[List[str]] = []

        def visit(node: str, path: List[str]) -> None:
            color[node] = GREY
            path.append(node)
            for neighbor in sorted(graph[node]):
                if color[neighbor] == GREY:
                    start = path.index(neighbor)
                    cycle = path[start:] + [neighbor]
                    if cycle not in found:
                        found.append(cycle)
                elif color[neighbor] == WHITE:
                    visit(neighbor, path)
            path.pop()
            color[node] = BLACK

        for node in sorted(graph):
            if color[node] == WHITE:
                visit(node, [])
        return found

    def ok(self) -> bool:
        return not self.violations and not self.cycles()

    def to_dict(self) -> Dict[str, object]:
        return {
            "violations": list(self.violations),
            "edges": [list(edge) for edge in self.edges],
            "cycles": self.cycles(),
            "guarded_writes": self.guarded_writes,
            "locks_observed": self.lock_count,
            "unexercised": [list(item) for item in self.unexercised],
        }

    def render(self) -> str:
        lines = [
            "=== Lock sanitizer report ===",
            f"locks observed:      {self.lock_count}",
            f"lock-order edges:    {len(self.edges)}",
            f"guarded writes seen: {self.guarded_writes}",
        ]
        cycles = self.cycles()
        if cycles:
            lines.append(f"potential deadlocks: {len(cycles)}")
            for cycle in cycles:
                lines.append("  " + " -> ".join(cycle))
        else:
            lines.append("potential deadlocks: 0 (graph is acyclic)")
        if self.violations:
            lines.append(f"unguarded writes:    {len(self.violations)}")
            for violation in self.violations:
                lines.append(f"  {violation}")
        else:
            lines.append("unguarded writes:    0")
        if self.unexercised:
            lines.append(
                "declared but unexercised guards (never observed held "
                "around a write):"
            )
            for class_name, attr, lock in self.unexercised:
                lines.append(
                    f"  {class_name}.{attr} <- {class_name}.{lock}"
                )
        return "\n".join(lines)


def _creation_label() -> str:
    """``file.py:lineno`` of the frame that called Lock()/RLock()."""
    frame = sys._getframe(2)
    filename = frame.f_code.co_filename.rsplit("/", 1)[-1]
    return f"{filename}:{frame.f_lineno}"


class sanitize:
    """Context manager enabling the lock sanitizer.

    ``with sanitize() as report:`` patches the ``threading.Lock`` /
    ``threading.RLock`` factories and installs guarded-write hooks on
    every imported ``repro`` class with a ``_GUARDED_BY`` map; on exit
    everything is restored and ``report`` is finalized.  Nested use
    raises — the patch is process-global, one window at a time.
    """

    _active: Optional["sanitize"] = None

    def __init__(self):
        self.monitor = _Monitor()
        self.report: Optional[SanitizerReport] = None
        self._hooked: List[Tuple[type, bool, object]] = []
        self._declared: Dict[str, Dict[str, Tuple[str, str]]] = {}

    def __enter__(self) -> "SanitizerHandle":
        if sanitize._active is not None:
            raise RuntimeError("sanitize() is already active")
        sanitize._active = self
        monitor = self.monitor

        def make_lock():
            return SanitizedLock(
                _REAL_LOCK(), monitor.label_for(_creation_label()), monitor
            )

        def make_rlock():
            return SanitizedLock(
                _REAL_RLOCK(), monitor.label_for(_creation_label()), monitor
            )

        threading.Lock = make_lock
        threading.RLock = make_rlock
        for cls, guards in _guarded_classes():
            self._declared[cls.__name__] = guards
            own = "__setattr__" in cls.__dict__
            original = cls.__setattr__
            try:
                cls.__setattr__ = _make_hook(
                    cls.__name__, guards, original, monitor
                )
            except (TypeError, AttributeError):
                continue  # classes that refuse attribute injection
            self._hooked.append((cls, own, original))
        return SanitizerHandle(self)

    def __exit__(self, exc_type, exc_value, traceback):
        threading.Lock = _REAL_LOCK
        threading.RLock = _REAL_RLOCK
        for cls, own, original in self._hooked:
            if own:
                cls.__setattr__ = original
            else:
                del cls.__setattr__
        self._hooked.clear()
        sanitize._active = None
        self.report = SanitizerReport(self.monitor, self._declared)
        return False


class SanitizerHandle:
    """Live view handed out by ``__enter__``; after ``__exit__`` it
    forwards everything to the finalized :class:`SanitizerReport`."""

    def __init__(self, owner: sanitize):
        object.__setattr__(self, "_owner", owner)

    def _target(self):
        owner = self._owner
        if owner.report is not None:
            return owner.report
        return None

    @property
    def violations(self) -> List[str]:
        report = self._target()
        if report is not None:
            return report.violations
        return list(self._owner.monitor.violations)

    @property
    def edges(self) -> List[Tuple[str, str]]:
        report = self._target()
        if report is not None:
            return report.edges
        return sorted(self._owner.monitor.edges)

    @property
    def guarded_writes(self) -> int:
        report = self._target()
        if report is not None:
            return report.guarded_writes
        return self._owner.monitor.guarded_writes

    @property
    def lock_count(self) -> int:
        report = self._target()
        if report is not None:
            return report.lock_count
        return len(self._owner.monitor.acquired_labels)

    @property
    def unexercised(self):
        report = self._target()
        if report is not None:
            return report.unexercised
        return []

    def cycles(self) -> List[List[str]]:
        report = self._target()
        if report is not None:
            return report.cycles()
        return SanitizerReport(self._owner.monitor, {}).cycles()

    def ok(self) -> bool:
        return not self.violations and not self.cycles()

    def render(self) -> str:
        report = self._target()
        if report is None:
            raise RuntimeError("sanitize() window still open")
        return report.render()

    def to_dict(self) -> Dict[str, object]:
        report = self._target()
        if report is None:
            raise RuntimeError("sanitize() window still open")
        return report.to_dict()
