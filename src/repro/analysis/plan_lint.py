"""Plan lint (``PZ1xx``): schema-dataflow checks over a logical plan.

Walks a :class:`~repro.core.logical.LogicalPlan` operator by operator and
flags mistakes the plan constructors cannot catch — fields referenced by
``depends_on`` that don't exist upstream, fields computed but never
consumed, duplicate or contradictory filters, a ``limit`` placed before a
filter, and aggregates over fields that can never be numeric.  The
optimizer runs this lint before enumerating plans so chat users see the
problems *before* any (simulated) dollars are spent.
"""

from __future__ import annotations

import difflib
from typing import List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.diagnostics import (
    Emitter,
    LintConfig,
    LintResult,
    Severity,
    register_rule,
)
from repro.core.fields import BooleanField, BytesField, ListField
from repro.core.logical import (
    AggFunc,
    Aggregate,
    BaseScan,
    ConvertScan,
    FilteredScan,
    GroupByAggregate,
    LimitScan,
    LogicalOperator,
    LogicalPlan,
    Project,
    RetrieveScan,
)

register_rule(
    "PZ101", "unknown-field",
    "depends_on references a field that does not exist upstream",
    Severity.ERROR,
)
register_rule(
    "PZ102", "dead-field",
    "a convert computes a field that nothing downstream consumes",
    Severity.WARNING,
)
register_rule(
    "PZ103", "duplicate-filter",
    "the same filter predicate appears more than once",
    Severity.WARNING,
)
register_rule(
    "PZ104", "contradictory-filter",
    "a filter is the negation of an earlier filter; the result is empty",
    Severity.WARNING,
)
register_rule(
    "PZ105", "limit-before-filter",
    "a limit placed before a filter truncates the stream the filter sees",
    Severity.WARNING,
)
register_rule(
    "PZ106", "aggregate-type",
    "sum/average over a field that can never be numeric",
    Severity.ERROR,
)
register_rule(
    "PZ107", "zero-limit",
    "limit(0) makes the pipeline output empty",
    Severity.WARNING,
)
register_rule(
    "PZ108", "retrieve-k",
    "retrieve k exceeds the source record count",
    Severity.INFO,
)
register_rule(
    "PZ109", "useless-sharding",
    "the requested shard count cannot speed this plan up",
    Severity.WARNING,
)

#: Aggregates that need numeric inputs.
_NUMERIC_AGGS = (AggFunc.SUM, AggFunc.AVERAGE)

#: Field types that can never hold a numeric value (StringFields are
#: allowed: extraction schemas default to strings that carry numbers).
_NON_NUMERIC_FIELDS = (BooleanField, BytesField, ListField)


def _location(index: int, op: LogicalOperator) -> str:
    description = op.describe()
    if len(description) > 60:
        description = description[:57] + "..."
    return f"op[{index}] {description}"


def _depends_on(op: LogicalOperator) -> List[str]:
    if isinstance(op, FilteredScan):
        return list(op.spec.depends_on)
    if isinstance(op, ConvertScan):
        return list(op.depends_on)
    return []


def _explicit_refs(op: LogicalOperator) -> Set[str]:
    """Fields ``op`` reads by name (empty for pass-through operators)."""
    if isinstance(op, Project):
        return set(op.fields)
    if isinstance(op, GroupByAggregate):
        refs = set(op.group_fields)
        refs.update(f for _, f, _ in op.aggregates if f)
        return refs
    if isinstance(op, Aggregate):
        return {op.field} if op.field else set()
    refs = set(_depends_on(op))
    # Extended operators (Sort, Distinct-with-fields) expose field lists.
    single = getattr(op, "field", None)
    if isinstance(single, str):
        refs.add(single)
    many = getattr(op, "fields", None)
    if isinstance(many, (list, tuple)):
        refs.update(many)
    return refs


def _consumes_everything(op: LogicalOperator) -> bool:
    """Whether ``op`` may read any field (so nothing upstream is dead).

    Semantic operators without a ``depends_on`` restriction see the whole
    document text; UDFs without one may touch any attribute; a
    field-less ``distinct`` compares all fields.
    """
    if isinstance(op, FilteredScan):
        return not op.spec.depends_on
    if isinstance(op, ConvertScan):
        return not op.depends_on
    if isinstance(op, RetrieveScan):
        return True
    from repro.core.logical_ext import Distinct, JoinScan

    if isinstance(op, JoinScan):
        return True
    if isinstance(op, Distinct):
        return op.fields is None
    return False


def lint_plan(
    plan: Union[LogicalPlan, "object"],
    source=None,
    config: Optional[LintConfig] = None,
    shards: int = 1,
) -> LintResult:
    """Lint a logical plan (or a ``Dataset``); returns every finding.

    Args:
        plan: a :class:`LogicalPlan` or anything with a ``logical_plan()``
            method (a :class:`~repro.core.dataset.Dataset`).
        source: optional :class:`~repro.core.sources.DataSource`; enables
            cardinality-aware rules (PZ108, PZ109).
        config: per-rule enable/disable; defaults to everything on.
        shards: requested scale-out parallelism degree; enables PZ109
            (sharding that can't help — more shards than records, or a
            leading limit that truncates the stream before it fans out).
    """
    if not isinstance(plan, LogicalPlan):
        if source is None:
            try:
                source = plan.source
            except Exception:
                source = None
        plan = plan.logical_plan()

    result = LintResult()
    emitter = Emitter(result, config)
    ops = list(plan.operators)

    _lint_field_references(ops, emitter)
    _lint_dead_fields(ops, plan, emitter)
    _lint_filters(ops, emitter)
    _lint_limits(ops, emitter)
    _lint_aggregates(ops, emitter)
    _lint_source_bounds(ops, source, emitter)
    _lint_sharding(ops, source, shards, emitter)
    _lint_subplans(ops, result, config)
    return result


# ---------------------------------------------------------------------------
# Individual rule passes.
# ---------------------------------------------------------------------------


def _lint_field_references(ops: Sequence[LogicalOperator],
                           emitter: Emitter) -> None:
    """PZ101: depends_on fields must exist on the operator's input."""
    for index, op in enumerate(ops):
        if op.input_schema is None:
            continue
        available = set(op.input_schema.field_map())
        for name in _depends_on(op):
            if name in available:
                continue
            close = difflib.get_close_matches(name, sorted(available), n=1)
            hint = (
                f"did you mean {close[0]!r}?" if close
                else f"available fields: {sorted(available)}"
            )
            emitter.emit(
                "PZ101",
                f"depends_on field {name!r} does not exist on "
                f"{op.input_schema.schema_name()} "
                f"(fields: {sorted(available)})",
                location=_location(index, op),
                hint=hint,
            )


def _lint_dead_fields(ops: Sequence[LogicalOperator], plan: LogicalPlan,
                      emitter: Emitter) -> None:
    """PZ102: convert-computed fields nothing downstream ever consumes."""
    final_fields = set(plan.output_schema.field_map())
    for index, op in enumerate(ops):
        if not isinstance(op, ConvertScan) or not op.new_fields:
            continue
        downstream = ops[index + 1:]
        if any(_consumes_everything(later) for later in downstream):
            continue
        consumed: Set[str] = set(final_fields)
        for later in downstream:
            consumed |= _explicit_refs(later)
        for name in op.new_fields:
            if name in consumed:
                continue
            emitter.emit(
                "PZ102",
                f"field {name!r} is computed by this convert but never "
                "consumed downstream nor present in the final schema",
                location=_location(index, op),
                hint="drop the field from the schema or project it away "
                     "before the convert pays for it",
            )


def _normalized_predicate(op: FilteredScan) -> Optional[str]:
    if not op.spec.is_semantic:
        return None
    return " ".join(op.spec.predicate.lower().split())


def _lint_filters(ops: Sequence[LogicalOperator], emitter: Emitter) -> None:
    """PZ103 duplicates, PZ104 contradictions (negated duplicates)."""
    seen: List[Tuple[int, FilteredScan, str]] = []
    for index, op in enumerate(ops):
        if not isinstance(op, FilteredScan):
            continue
        signature = op.spec.signature()
        predicate = _normalized_predicate(op)
        for earlier_index, earlier, earlier_sig in seen:
            if signature == earlier_sig:
                emitter.emit(
                    "PZ103",
                    f"filter duplicates op[{earlier_index}] "
                    f"{earlier.describe()}; the second pass costs tokens "
                    "without changing the result",
                    location=_location(index, op),
                    hint="remove one of the duplicate filters",
                )
                break
        else:
            earlier_predicates = {
                _normalized_predicate(e): i for i, e, _ in seen
                if _normalized_predicate(e)
            }
            if predicate:
                negated = (
                    predicate[4:] if predicate.startswith("not ")
                    else f"not {predicate}"
                )
                if negated in earlier_predicates:
                    emitter.emit(
                        "PZ104",
                        f"filter {op.spec.describe()} contradicts "
                        f"op[{earlier_predicates[negated]}]; no record can "
                        "satisfy both, so the pipeline output is empty",
                        location=_location(index, op),
                        hint="remove one of the contradictory filters",
                    )
        seen.append((index, op, signature))


def _lint_limits(ops: Sequence[LogicalOperator], emitter: Emitter) -> None:
    """PZ105 limit-before-filter, PZ107 limit(0)."""
    for index, op in enumerate(ops):
        if not isinstance(op, LimitScan):
            continue
        if op.limit == 0:
            emitter.emit(
                "PZ107",
                "limit(0) discards every record; the pipeline output is "
                "always empty",
                location=_location(index, op),
                hint="remove the limit or use a positive bound",
            )
            continue
        for later_index, later in enumerate(ops[index + 1:], index + 1):
            if isinstance(later, FilteredScan):
                emitter.emit(
                    "PZ105",
                    f"limit({op.limit}) runs before the filter at "
                    f"op[{later_index}]; the filter only sees the first "
                    f"{op.limit} records, so the result may hold fewer "
                    "matches than intended",
                    location=_location(index, op),
                    hint="move the limit after the filter (or keep it "
                         "first if truncation is intended — it is cheaper)",
                )
                break


def _lint_aggregates(ops: Sequence[LogicalOperator],
                     emitter: Emitter) -> None:
    """PZ106: sum/average over boolean/bytes/list fields."""
    for index, op in enumerate(ops):
        pairs: List[Tuple[AggFunc, Optional[str]]] = []
        if isinstance(op, Aggregate):
            pairs.append((op.func, op.field))
        elif isinstance(op, GroupByAggregate):
            pairs.extend((func, field) for func, field, _ in op.aggregates)
        for func, field_name in pairs:
            if func not in _NUMERIC_AGGS or not field_name:
                continue
            field = op.input_schema.field_map().get(field_name)
            if isinstance(field, _NON_NUMERIC_FIELDS):
                emitter.emit(
                    "PZ106",
                    f"{func.value}({field_name!r}) aggregates a "
                    f"{type(field).__name__}, which never holds numeric "
                    "values",
                    location=_location(index, op),
                    hint="aggregate a numeric field or use count",
                )


def _lint_source_bounds(ops: Sequence[LogicalOperator], source,
                        emitter: Emitter) -> None:
    """PZ108: retrieve k larger than the whole source."""
    if source is None:
        return
    try:
        cardinality = len(source)
    except TypeError:
        return
    for index, op in enumerate(ops):
        if isinstance(op, RetrieveScan) and op.k > cardinality:
            emitter.emit(
                "PZ108",
                f"retrieve k={op.k} exceeds the source's {cardinality} "
                "record(s); every record is returned",
                location=_location(index, op),
            )


def _lint_sharding(ops: Sequence[LogicalOperator], source, shards: int,
                   emitter: Emitter) -> None:
    """PZ109: a shard count the plan/source cannot benefit from."""
    if shards <= 1:
        return
    cardinality = None
    if source is not None:
        try:
            cardinality = len(source)
        except TypeError:
            cardinality = None
    if cardinality is not None and cardinality < shards:
        emitter.emit(
            "PZ109",
            f"shards={shards} exceeds the source's {cardinality} "
            "record(s); the extra shards receive no records and only add "
            "scatter/gather overhead",
            location="plan",
            hint=f"use shards<={max(1, cardinality)} or let the optimizer "
                 "choose the degree (shards=None)",
        )
    for index, op in enumerate(ops):
        if isinstance(op, (FilteredScan, ConvertScan)):
            break
        if isinstance(op, LimitScan):
            emitter.emit(
                "PZ109",
                f"limit({op.limit}) runs before any semantic operator, so "
                f"the executor stops after {op.limit} record(s) and "
                f"shards={shards} cannot fan the work out",
                location=_location(index, op),
                hint="move the limit after the semantic operators or drop "
                     "the shards request",
            )
            break


def _lint_subplans(ops: Sequence[LogicalOperator], result: LintResult,
                   config: Optional[LintConfig]) -> None:
    """Recurse into join/union right-hand pipelines."""
    from repro.core.logical_ext import JoinScan, UnionScan

    for index, op in enumerate(ops):
        if isinstance(op, (JoinScan, UnionScan)):
            sub = lint_plan(op.right_dataset, config=config)
            result.extend(sub, location_prefix=f"op[{index}].right ")
