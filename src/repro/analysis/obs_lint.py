"""pz-lint ``OB4xx``: observability conventions over finalized artifacts.

The tracing subsystem (:mod:`repro.obs`) has naming and attribute
conventions — span names are lowercase dotted identifiers
(``layer.action``), every span carries a kind from the
:class:`~repro.obs.trace.SpanKind` vocabulary, and well-known span names
must carry the attributes their consumers rely on (the critical-path
analyzer reads ``workers`` off ``pipeline.stage``; hotspot aggregation
reads ``op`` off operator spans).  ``lint_trace`` checks a finalized
:class:`~repro.obs.trace.Trace` against those conventions so new
instrumentation can't silently break the analysis and export layers.

``lint_provenance`` (``OB402``) does the same for finalized
:class:`~repro.obs.provenance.ProvenanceGraph` objects: drop events name
a reason from the :data:`~repro.obs.provenance.DROP_REASONS` enum and
eliminate exactly one record, emit events derive at least one child, and
every event references live node ids — so a new operator's
instrumentation can't silently corrupt ``why``/``why_not`` answers.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.analysis.diagnostics import (
    Emitter,
    LintConfig,
    LintResult,
    Severity,
    register_rule,
)
from repro.obs.trace import SpanKind, Trace

register_rule(
    "OB401", "span-conventions",
    "a span violates naming/kind/attribute conventions "
    "(dotted lowercase name, known kind, required attributes)",
    Severity.WARNING,
)

register_rule(
    "OB402", "provenance-conventions",
    "a provenance event violates graph conventions (unknown drop "
    "reason, wrong parent/child arity, dead node reference, or a "
    "pass-through emit without evidence attributes)",
    Severity.WARNING,
)

#: ``layer.action`` (at least two dotted lowercase segments).
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(?:\.[a-z][a-z0-9_]*)+$")

_KNOWN_KINDS = frozenset(
    value for name, value in vars(SpanKind).items()
    if not name.startswith("_") and isinstance(value, str)
)

#: Attributes the analysis/export layers read off well-known span names.
_REQUIRED_ATTRS = {
    "op.open": ("op",),
    "op.process": ("op",),
    "op.batch": ("op",),
    "op.close": ("op",),
    "op.scan": ("op",),
    "llm.call": ("model", "operation"),
    "pipeline.stage": ("stage", "workers"),
    "pipeline.bundle": ("seq",),
    "plan.run": ("executor",),
}


def lint_trace(
    trace: Trace,
    config: Optional[LintConfig] = None,
    result: Optional[LintResult] = None,
) -> LintResult:
    """Check every span of ``trace`` against the OB4xx conventions."""
    result = result if result is not None else LintResult()
    emitter = Emitter(result, config)
    for span in trace.spans:
        location = f"span#{span.span_id}({span.name})"
        if not _NAME_RE.match(span.name):
            emitter.emit(
                "OB401",
                f"span name {span.name!r} is not a dotted lowercase "
                "identifier",
                location,
                hint="name spans '<layer>.<action>', e.g. 'op.process'",
            )
        if span.kind not in _KNOWN_KINDS:
            emitter.emit(
                "OB401",
                f"span kind {span.kind!r} is not in the SpanKind "
                "vocabulary",
                location,
                hint=f"use one of {sorted(_KNOWN_KINDS)}",
            )
        for attr in _REQUIRED_ATTRS.get(span.name, ()):
            if attr not in span.attributes:
                emitter.emit(
                    "OB401",
                    f"span {span.name!r} is missing its required "
                    f"attribute {attr!r}",
                    location,
                    hint="the analysis/export layers read this attribute",
                )
    return result


def lint_provenance(
    graph,
    config: Optional[LintConfig] = None,
    result: Optional[LintResult] = None,
) -> LintResult:
    """Check a finalized :class:`ProvenanceGraph` against OB402.

    Accepts a :class:`~repro.obs.provenance.ProvenanceGraph` or its
    ``to_dict()`` payload (so a ``provenance.json`` loaded from a run
    registry can be linted without reconstructing the object).
    """
    from repro.obs.provenance import DROP_REASONS

    result = result if result is not None else LintResult()
    emitter = Emitter(result, config)
    payload = graph if isinstance(graph, dict) else graph.to_dict()
    node_ids = {node["id"] for node in payload["nodes"]}

    for index, event in enumerate(payload["events"]):
        label = event.get("op_label", event.get("op"))
        location = f"event#{index}({label})"
        parents = event.get("parents", [])
        children = event.get("children", [])
        for ref in list(parents) + list(children):
            if ref not in node_ids:
                emitter.emit(
                    "OB402",
                    f"event references node {ref}, which is not in the "
                    "graph",
                    location,
                    hint="register records via source() or emit() before "
                         "referencing them",
                )
        if event["kind"] == "drop":
            if event.get("reason") not in DROP_REASONS:
                emitter.emit(
                    "OB402",
                    f"drop reason {event.get('reason')!r} is not in the "
                    "DropReason enum",
                    location,
                    hint=f"use one of {sorted(DROP_REASONS)}",
                )
            if len(parents) != 1 or children:
                emitter.emit(
                    "OB402",
                    "a drop event must eliminate exactly one record "
                    f"(got {len(parents)} parents, {len(children)} "
                    "children)",
                    location,
                    hint="report one drop() per eliminated record",
                )
        elif event["kind"] == "emit":
            if event.get("reason"):
                emitter.emit(
                    "OB402",
                    "an emit event must not carry a drop reason",
                    location,
                    hint="reasons belong on drop events",
                )
            if not children:
                emitter.emit(
                    "OB402",
                    "an emit event must derive at least one child",
                    location,
                    hint="use drop() when a record is eliminated",
                )
            # Empty-input aggregates legitimately emit with no parents
            # and mark the case with folded=0.
            if not parents and event.get("attrs", {}).get("folded") != 0:
                emitter.emit(
                    "OB402",
                    "an emit event must have at least one parent",
                    location,
                    hint="only empty-input aggregates (folded=0) may "
                         "emit parentless records",
                )
            if (parents and parents == children
                    and not event.get("attrs")
                    and not event.get("llm")):
                emitter.emit(
                    "OB402",
                    "a pass-through emit carries no evidence "
                    "(no attributes, no llm summary)",
                    location,
                    hint="record why the record survived (verdict, "
                         "position, score, ...)",
                )
        else:
            emitter.emit(
                "OB402",
                f"unknown event kind {event['kind']!r}",
                location,
                hint="events are 'emit' or 'drop'",
            )

    for output_id in payload["output_ids"]:
        if output_id not in node_ids:
            emitter.emit(
                "OB402",
                f"output id {output_id} is not a node in the graph",
                "outputs",
                hint="outputs must be finalized graph nodes",
            )
    return result
