"""pz-lint ``OB4xx``: observability conventions over finalized artifacts.

The tracing subsystem (:mod:`repro.obs`) has naming and attribute
conventions — span names are lowercase dotted identifiers
(``layer.action``), every span carries a kind from the
:class:`~repro.obs.trace.SpanKind` vocabulary, and well-known span names
must carry the attributes their consumers rely on (the critical-path
analyzer reads ``workers`` off ``pipeline.stage``; hotspot aggregation
reads ``op`` off operator spans).  ``lint_trace`` checks a finalized
:class:`~repro.obs.trace.Trace` against those conventions so new
instrumentation can't silently break the analysis and export layers.

``lint_provenance`` (``OB402``) does the same for finalized
:class:`~repro.obs.provenance.ProvenanceGraph` objects: drop events name
a reason from the :data:`~repro.obs.provenance.DROP_REASONS` enum and
eliminate exactly one record, emit events derive at least one child, and
every event references live node ids — so a new operator's
instrumentation can't silently corrupt ``why``/``why_not`` answers.
"""

from __future__ import annotations

import ast
import re
from typing import Optional

from repro.analysis.diagnostics import (
    Emitter,
    LintConfig,
    LintResult,
    Severity,
    register_rule,
)
from repro.obs.trace import SpanKind, Trace

register_rule(
    "OB401", "span-conventions",
    "a span violates naming/kind/attribute conventions "
    "(dotted lowercase name, known kind, required attributes)",
    Severity.WARNING,
)

register_rule(
    "OB402", "provenance-conventions",
    "a provenance event violates graph conventions (unknown drop "
    "reason, wrong parent/child arity, dead node reference, or a "
    "pass-through emit without evidence attributes)",
    Severity.WARNING,
)

register_rule(
    "OB403", "telemetry-conventions",
    "engine/executor source reads the wall clock directly instead of "
    "going through repro.obs.telemetry (wall_now/wall_perf), blurring "
    "the virtual-clock/wall-clock boundary",
    Severity.ERROR,
)

#: ``layer.action`` (at least two dotted lowercase segments).
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(?:\.[a-z][a-z0-9_]*)+$")

_KNOWN_KINDS = frozenset(
    value for name, value in vars(SpanKind).items()
    if not name.startswith("_") and isinstance(value, str)
)

#: Attributes the analysis/export layers read off well-known span names.
_REQUIRED_ATTRS = {
    "op.open": ("op",),
    "op.process": ("op",),
    "op.batch": ("op",),
    "op.close": ("op",),
    "op.scan": ("op",),
    "llm.call": ("model", "operation"),
    "pipeline.stage": ("stage", "workers"),
    "pipeline.bundle": ("seq",),
    "plan.run": ("executor",),
}


def lint_trace(
    trace: Trace,
    config: Optional[LintConfig] = None,
    result: Optional[LintResult] = None,
) -> LintResult:
    """Check every span of ``trace`` against the OB4xx conventions."""
    result = result if result is not None else LintResult()
    emitter = Emitter(result, config)
    for span in trace.spans:
        location = f"span#{span.span_id}({span.name})"
        if not _NAME_RE.match(span.name):
            emitter.emit(
                "OB401",
                f"span name {span.name!r} is not a dotted lowercase "
                "identifier",
                location,
                hint="name spans '<layer>.<action>', e.g. 'op.process'",
            )
        if span.kind not in _KNOWN_KINDS:
            emitter.emit(
                "OB401",
                f"span kind {span.kind!r} is not in the SpanKind "
                "vocabulary",
                location,
                hint=f"use one of {sorted(_KNOWN_KINDS)}",
            )
        for attr in _REQUIRED_ATTRS.get(span.name, ()):
            if attr not in span.attributes:
                emitter.emit(
                    "OB401",
                    f"span {span.name!r} is missing its required "
                    f"attribute {attr!r}",
                    location,
                    hint="the analysis/export layers read this attribute",
                )
    return result


def lint_provenance(
    graph,
    config: Optional[LintConfig] = None,
    result: Optional[LintResult] = None,
) -> LintResult:
    """Check a finalized :class:`ProvenanceGraph` against OB402.

    Accepts a :class:`~repro.obs.provenance.ProvenanceGraph` or its
    ``to_dict()`` payload (so a ``provenance.json`` loaded from a run
    registry can be linted without reconstructing the object).
    """
    from repro.obs.provenance import DROP_REASONS

    result = result if result is not None else LintResult()
    emitter = Emitter(result, config)
    payload = graph if isinstance(graph, dict) else graph.to_dict()
    node_ids = {node["id"] for node in payload["nodes"]}

    for index, event in enumerate(payload["events"]):
        label = event.get("op_label", event.get("op"))
        location = f"event#{index}({label})"
        parents = event.get("parents", [])
        children = event.get("children", [])
        for ref in list(parents) + list(children):
            if ref not in node_ids:
                emitter.emit(
                    "OB402",
                    f"event references node {ref}, which is not in the "
                    "graph",
                    location,
                    hint="register records via source() or emit() before "
                         "referencing them",
                )
        if event["kind"] == "drop":
            if event.get("reason") not in DROP_REASONS:
                emitter.emit(
                    "OB402",
                    f"drop reason {event.get('reason')!r} is not in the "
                    "DropReason enum",
                    location,
                    hint=f"use one of {sorted(DROP_REASONS)}",
                )
            if len(parents) != 1 or children:
                emitter.emit(
                    "OB402",
                    "a drop event must eliminate exactly one record "
                    f"(got {len(parents)} parents, {len(children)} "
                    "children)",
                    location,
                    hint="report one drop() per eliminated record",
                )
        elif event["kind"] == "emit":
            if event.get("reason"):
                emitter.emit(
                    "OB402",
                    "an emit event must not carry a drop reason",
                    location,
                    hint="reasons belong on drop events",
                )
            if not children:
                emitter.emit(
                    "OB402",
                    "an emit event must derive at least one child",
                    location,
                    hint="use drop() when a record is eliminated",
                )
            # Empty-input aggregates legitimately emit with no parents
            # and mark the case with folded=0.
            if not parents and event.get("attrs", {}).get("folded") != 0:
                emitter.emit(
                    "OB402",
                    "an emit event must have at least one parent",
                    location,
                    hint="only empty-input aggregates (folded=0) may "
                         "emit parentless records",
                )
            if (parents and parents == children
                    and not event.get("attrs")
                    and not event.get("llm")):
                emitter.emit(
                    "OB402",
                    "a pass-through emit carries no evidence "
                    "(no attributes, no llm summary)",
                    location,
                    hint="record why the record survived (verdict, "
                         "position, score, ...)",
                )
        else:
            emitter.emit(
                "OB402",
                f"unknown event kind {event['kind']!r}",
                location,
                hint="events are 'emit' or 'drop'",
            )

    for output_id in payload["output_ids"]:
        if output_id not in node_ids:
            emitter.emit(
                "OB402",
                f"output id {output_id} is not a node in the graph",
                "outputs",
                hint="outputs must be finalized graph nodes",
            )
    return result


# ---------------------------------------------------------------------------
# OB403: the wall-clock boundary (telemetry conventions)
# ---------------------------------------------------------------------------

#: ``module.attr`` call targets that read the wall clock (same vocabulary
#: as CC504, which flags them for *determinism*; OB403 flags them for
#: *layering* — even deterministic-safe reads belong in the telemetry
#: module so operational time stays in one place).
_WALL_CLOCK_ATTRS = {
    ("time", "time"), ("time", "time_ns"),
    ("time", "monotonic"), ("time", "monotonic_ns"),
    ("time", "perf_counter"), ("time", "perf_counter_ns"),
    ("time", "process_time"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"),
}

#: Bare names that read the wall clock when imported from ``time``
#: (``from time import perf_counter``).
_WALL_CLOCK_BARE = frozenset({
    "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns",
    "time_ns", "process_time",
})

#: Path fragments that put a file in OB403's jurisdiction (the package's
#: own source, however the linter was pointed at it).
_IN_SCOPE_FRAGMENT = "repro/"

#: The one module sanctioned to read the wall clock: the telemetry layer
#: itself (its reads carry ``# nondet: ok(...)`` for CC504 already).
_EXEMPT_SUFFIX = "obs/telemetry.py"


def _wallclock_pragma(source_lines, lineno: int) -> bool:
    if not 1 <= lineno <= len(source_lines):
        return False
    return "# wallclock: ok(" in source_lines[lineno - 1]


def lint_source_wallclock(
    source: str,
    filename: str = "<program>",
    config: Optional[LintConfig] = None,
    result: Optional[LintResult] = None,
) -> LintResult:
    """OB403: direct wall-clock reads outside the telemetry layer.

    Only the package's own modules are in scope (the normalized
    ``filename`` contains ``repro/``) — generated programs and user
    scripts are CC504's concern, not a layering question.  The
    telemetry module itself is exempt, and any individual read can be
    waived with a ``# wallclock: ok(<reason>)`` pragma on its line.
    """
    result = result if result is not None else LintResult()
    normalized = filename.replace("\\", "/")
    if _IN_SCOPE_FRAGMENT not in normalized:
        return result
    if normalized.endswith(_EXEMPT_SUFFIX):
        return result
    try:
        module = ast.parse(source, filename=filename)
    except SyntaxError:
        return result  # CG301's problem, not ours
    emitter = Emitter(result, config)
    source_lines = source.splitlines()

    from_time = {
        alias.asname or alias.name
        for node in ast.walk(module)
        if isinstance(node, ast.ImportFrom) and node.module == "time"
        for alias in node.names
        if alias.name in _WALL_CLOCK_BARE | {"time"}
    }
    # ``import time as _time`` must not dodge the rule: resolve module
    # aliases back to their canonical names before matching receivers.
    module_aliases = {"time": "time", "datetime": "datetime",
                      "date": "date"}
    for node in ast.walk(module):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in ("time", "datetime"):
                    module_aliases[alias.asname or alias.name] = alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.module == "datetime":
                for alias in node.names:
                    if alias.name in ("datetime", "date"):
                        module_aliases[alias.asname or alias.name] = (
                            alias.name)

    for node in ast.walk(module):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name):
                receiver = module_aliases.get(base.id)
            elif (isinstance(base, ast.Attribute)
                    and isinstance(base.value, ast.Name)
                    and module_aliases.get(base.value.id) == "datetime"
                    and base.attr in ("datetime", "date")):
                # Dotted receivers: ``import datetime`` followed by
                # ``datetime.datetime.now()`` / ``datetime.date.today()``
                # — the most common wall-clock spelling of all must not
                # slip through the boundary.
                receiver = base.attr
            else:
                receiver = None
            if (receiver, func.attr) not in _WALL_CLOCK_ATTRS:
                continue
            read = f"{receiver}.{func.attr}()"
        elif isinstance(func, ast.Name) and func.id in from_time:
            read = f"{func.id}()"
        else:
            continue
        if _wallclock_pragma(source_lines, node.lineno):
            continue
        emitter.emit(
            "OB403",
            f"direct wall-clock read {read} outside the telemetry layer",
            location=f"{filename}:{node.lineno}",
            hint="route operational timing through repro.obs.telemetry "
                 "(wall_now/wall_perf) or waive with "
                 "'# wallclock: ok(<reason>)'",
        )
    return result
