"""pz-lint ``OB4xx``: observability conventions over finalized traces.

The tracing subsystem (:mod:`repro.obs`) has naming and attribute
conventions — span names are lowercase dotted identifiers
(``layer.action``), every span carries a kind from the
:class:`~repro.obs.trace.SpanKind` vocabulary, and well-known span names
must carry the attributes their consumers rely on (the critical-path
analyzer reads ``workers`` off ``pipeline.stage``; hotspot aggregation
reads ``op`` off operator spans).  ``lint_trace`` checks a finalized
:class:`~repro.obs.trace.Trace` against those conventions so new
instrumentation can't silently break the analysis and export layers.

This is the first rule of the family; further ``OB4xx`` rules (duration
reconciliation, lane consistency) can register alongside it.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.analysis.diagnostics import (
    Emitter,
    LintConfig,
    LintResult,
    Severity,
    register_rule,
)
from repro.obs.trace import SpanKind, Trace

register_rule(
    "OB401", "span-conventions",
    "a span violates naming/kind/attribute conventions "
    "(dotted lowercase name, known kind, required attributes)",
    Severity.WARNING,
)

#: ``layer.action`` (at least two dotted lowercase segments).
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(?:\.[a-z][a-z0-9_]*)+$")

_KNOWN_KINDS = frozenset(
    value for name, value in vars(SpanKind).items()
    if not name.startswith("_") and isinstance(value, str)
)

#: Attributes the analysis/export layers read off well-known span names.
_REQUIRED_ATTRS = {
    "op.open": ("op",),
    "op.process": ("op",),
    "op.batch": ("op",),
    "op.close": ("op",),
    "op.scan": ("op",),
    "llm.call": ("model", "operation"),
    "pipeline.stage": ("stage", "workers"),
    "pipeline.bundle": ("seq",),
    "plan.run": ("executor",),
}


def lint_trace(
    trace: Trace,
    config: Optional[LintConfig] = None,
    result: Optional[LintResult] = None,
) -> LintResult:
    """Check every span of ``trace`` against the OB4xx conventions."""
    result = result if result is not None else LintResult()
    emitter = Emitter(result, config)
    for span in trace.spans:
        location = f"span#{span.span_id}({span.name})"
        if not _NAME_RE.match(span.name):
            emitter.emit(
                "OB401",
                f"span name {span.name!r} is not a dotted lowercase "
                "identifier",
                location,
                hint="name spans '<layer>.<action>', e.g. 'op.process'",
            )
        if span.kind not in _KNOWN_KINDS:
            emitter.emit(
                "OB401",
                f"span kind {span.kind!r} is not in the SpanKind "
                "vocabulary",
                location,
                hint=f"use one of {sorted(_KNOWN_KINDS)}",
            )
        for attr in _REQUIRED_ATTRS.get(span.name, ()):
            if attr not in span.attributes:
                emitter.emit(
                    "OB401",
                    f"span {span.name!r} is missing its required "
                    f"attribute {attr!r}",
                    location,
                    hint="the analysis/export layers read this attribute",
                )
    return result
