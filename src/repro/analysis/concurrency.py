"""pz-lint ``CC5xx``: concurrency and determinism analysis over source.

The execution engine's contract is that every executor — sequential,
pipelined, sharded, async — produces byte-identical records, stats,
traces, and provenance.  That contract is enforced dynamically by the
equivalence property tests; this module is its *static* counterpart: an
AST analysis over the engine's own source (and over generated programs,
like the ``CG3xx`` family) that flags the two classic ways the contract
rots:

* **lock-discipline drift** — a shared mutable attribute touched outside
  the lock that is supposed to guard it; and
* **nondeterminism sources** — wall-clock reads, unseeded randomness,
  runtime-identity leaks, and unordered-set iteration feeding output.

Lock discipline is *declared* in the code under analysis.  A class lists
its guarded attributes in a ``_GUARDED_BY`` map::

    class UsageLedger:
        _GUARDED_BY = {"_records": "_lock"}

meaning every access to ``self._records`` (or ``ledger._records`` from a
sibling function in the same module) must sit inside a
``with self._lock:`` (resp. ``with ledger._lock:``) block.  A value may
also be a ``(lock, mode)`` pair where mode ``"writes"`` relaxes the rule
to mutations only — for types with a documented lock-free read contract
(e.g. :class:`~repro.llm.oracle.GroundTruthRegistry`, whose reads are
single atomic dict lookups).  Modules may declare a module-level
``_GUARDED_BY`` whose locks are module globals; those guard
free-function state (e.g. the shard-assignment caches in
:mod:`repro.core.sources`).

Rules:

* ``CC501`` — a guarded attribute is read or written outside a ``with
  <receiver>.<lock>:`` block (or ``with <lock>:`` for module-level
  guards).
* ``CC502`` — a class creates a ``threading.Lock``/``RLock`` that is
  never acquired anywhere in the module (dead lock: the discipline it
  advertises does not exist).
* ``CC503`` — a thread worker entry point (a method passed as
  ``threading.Thread(target=...)``, or reachable from one through
  same-class calls) writes a shared attribute that is neither declared
  in a ``_GUARDED_BY`` map nor a synchronization primitive nor
  thread-local.
* ``CC504`` — a wall-clock or scheduling observable (``time.time``,
  ``datetime.now``, ``queue.qsize``, ...) feeds a deterministic path.
* ``CC505`` — an entropy source: module-level ``random.*`` calls,
  unseeded ``random.Random()``, ``os.urandom``, ``uuid.uuid1/uuid4``,
  ``secrets.*``.
* ``CC506`` — a runtime ``id()`` value escapes into output (formatting,
  arithmetic, return values).  Identity-keying — ``d[id(x)]``,
  ``id(x) in seen``, ``seen.add(id(x))`` — is allowed: the *value* never
  surfaces, only object identity.
* ``CC507`` — iteration over an unordered ``set``/``frozenset`` (output
  order then depends on hash seeding); wrap the set in ``sorted()``.
  ``dict`` iteration is insertion-ordered in Python 3.7+ and is not
  flagged.

Two escape hatches keep the rules honest rather than noisy:

* statements that feed a *best-effort* metric (the explicitly
  scheduling-dependent class of :mod:`repro.obs.metrics` — queue-depth
  gauges and poll counters, excluded from deterministic snapshots) are
  allowlisted for CC504–CC507 via :data:`BEST_EFFORT_RECEIVERS`;
* a trailing ``# nondet: ok(<reason>)`` comment suppresses CC504–CC507
  on that line, and ``# guarded-by: ok(<reason>)`` suppresses
  CC501/CC503 — both require a reason, which the diagnostic would
  otherwise demand in review.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.analysis.diagnostics import (
    Emitter,
    LintConfig,
    LintResult,
    Severity,
    register_rule,
)

register_rule(
    "CC501", "guarded-attr-access",
    "a _GUARDED_BY attribute is accessed outside a 'with <lock>:' block",
    Severity.ERROR,
)
register_rule(
    "CC502", "dead-lock",
    "a threading.Lock/RLock attribute is created but never acquired "
    "anywhere in the module",
    Severity.WARNING,
)
register_rule(
    "CC503", "unguarded-worker-write",
    "a thread worker entry point writes a shared attribute that is not "
    "declared in a _GUARDED_BY map",
    Severity.ERROR,
)
register_rule(
    "CC504", "wall-clock-read",
    "a wall-clock or scheduling observable (time.time, datetime.now, "
    "qsize, ...) feeds a deterministic path",
    Severity.ERROR,
)
register_rule(
    "CC505", "entropy-source",
    "an entropy source (module-level random, unseeded Random(), "
    "os.urandom, uuid1/uuid4, secrets) feeds a deterministic path",
    Severity.ERROR,
)
register_rule(
    "CC506", "runtime-id-leak",
    "a runtime id() value escapes into output (identity-keying via "
    "dict/set membership is fine; the raw value is not reproducible)",
    Severity.WARNING,
)
register_rule(
    "CC507", "unordered-iteration",
    "iteration over an unordered set/frozenset feeds output; wrap it "
    "in sorted()",
    Severity.WARNING,
)

#: Attribute names whose enclosing statement is allowed to observe
#: scheduling state: they feed *best-effort* metrics (the explicitly
#: nondeterministic class of repro.obs.metrics, excluded from
#: deterministic snapshots).  This is the allowlist the pipelined
#: executor's queue-depth gauge and poll counter live on.
BEST_EFFORT_RECEIVERS = frozenset({"depth_gauge", "poll_counter"})

#: ``module.attr`` call targets that read the wall clock or the
#: scheduler (CC504).
_WALL_CLOCK_CALLS = {
    ("time", "time"), ("time", "monotonic"), ("time", "monotonic_ns"),
    ("time", "perf_counter"), ("time", "perf_counter_ns"),
    ("time", "time_ns"), ("time", "process_time"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"),
}
#: Bare method names that observe scheduling state on any receiver.
_SCHEDULING_CALLS = frozenset({"qsize"})

#: ``module.attr`` call targets that draw entropy (CC505).
_ENTROPY_CALLS = {
    ("os", "urandom"),
    ("uuid", "uuid1"), ("uuid", "uuid4"),
}
_ENTROPY_MODULES = frozenset({"secrets"})

#: Methods whose call on a guarded attribute counts as a *write* (they
#: mutate the container in place).
_MUTATOR_METHODS = frozenset({
    "append", "extend", "add", "insert", "remove", "discard", "pop",
    "popitem", "clear", "update", "setdefault", "move_to_end", "sort",
    "reverse", "appendleft", "popleft",
})

#: Constructors that create synchronization primitives / thread-locals;
#: attributes holding one are exempt from CC503 (they are the guards).
_SYNC_CONSTRUCTORS = frozenset({
    "Lock", "RLock", "Event", "Condition", "Semaphore",
    "BoundedSemaphore", "Barrier", "local", "Queue", "LifoQueue",
    "PriorityQueue", "SimpleQueue",
})
_LOCK_CONSTRUCTORS = frozenset({"Lock", "RLock"})

#: id() uses where only object *identity* matters and the value never
#: escapes: subscripts (``d[id(x)]``), membership tests, and arguments
#: to keyed-container methods.
_IDENTITY_SINK_METHODS = frozenset({
    "get", "add", "setdefault", "pop", "discard", "remove", "count",
    "index", "__contains__",
})


# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------


def _attach_parents(tree: ast.AST) -> None:
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._cc_parent = node  # type: ignore[attr-defined]


def _parent(node: ast.AST) -> Optional[ast.AST]:
    return getattr(node, "_cc_parent", None)


def _unparse(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - malformed node
        return "<expr>"


def _line_pragma(source_lines: List[str], lineno: int, kind: str) -> bool:
    """True when line ``lineno`` carries a ``# <kind>: ok(...)`` pragma."""
    if not 1 <= lineno <= len(source_lines):
        return False
    text = source_lines[lineno - 1]
    return f"# {kind}: ok(" in text or f"# {kind}: ok " in text


def _call_name(node: ast.Call) -> Tuple[Optional[str], str]:
    """(receiver-or-module, name) of a call: ``time.time()`` -> ("time",
    "time"); ``urandom()`` -> (None, "urandom")."""
    func = node.func
    if isinstance(func, ast.Attribute):
        base = func.value
        if isinstance(base, ast.Name):
            return base.id, func.attr
        if isinstance(base, ast.Attribute):
            return base.attr, func.attr
        return None, func.attr
    if isinstance(func, ast.Name):
        return None, func.id
    return None, ""


def _is_set_expr(node: ast.AST, set_vars: Set[str]) -> bool:
    """Does ``node`` evaluate to a set/frozenset (shallow inference)?"""
    if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call):
        _, name = _call_name(node)
        if name in ("set", "frozenset"):
            return True
    if isinstance(node, ast.Name) and node.id in set_vars:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)):
        # set algebra propagates setness from either side
        return (_is_set_expr(node.left, set_vars)
                or _is_set_expr(node.right, set_vars))
    return False


def _enclosing_function(node: ast.AST) -> Optional[ast.AST]:
    current = _parent(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return current
        current = _parent(current)
    return None


def _feeds_best_effort_metric(node: ast.AST) -> bool:
    """Is ``node`` an argument (transitively) of a call on an attribute
    in :data:`BEST_EFFORT_RECEIVERS`?"""
    current = _parent(node)
    while current is not None and not isinstance(current, ast.stmt):
        if isinstance(current, ast.Call):
            func = current.func
            if isinstance(func, ast.Attribute) and isinstance(
                    func.value, ast.Attribute):
                if func.value.attr in BEST_EFFORT_RECEIVERS:
                    return True
            if isinstance(func, ast.Attribute) and isinstance(
                    func.value, ast.Name):
                if func.value.id in BEST_EFFORT_RECEIVERS:
                    return True
        current = _parent(current)
    return False


# ---------------------------------------------------------------------------
# Guard declarations
# ---------------------------------------------------------------------------


class GuardEntry:
    """One declared guard: attribute ``attr`` is guarded by ``lock``."""

    __slots__ = ("attr", "lock", "mode", "owner", "module_level")

    def __init__(self, attr: str, lock: str, mode: str, owner: str,
                 module_level: bool = False):
        self.attr = attr
        self.lock = lock.split(".")[-1]
        self.mode = mode  # "all" | "writes"
        self.owner = owner
        self.module_level = module_level or "." not in lock and owner == ""

    def required_context(self, receiver: str) -> str:
        if self.module_level:
            return self.lock
        return f"{receiver}.{self.lock}"


def _parse_guard_value(value: ast.AST) -> Optional[Tuple[str, str]]:
    """(lock, mode) from a _GUARDED_BY value node, or None if malformed."""
    if isinstance(value, ast.Constant) and isinstance(value.value, str):
        return value.value, "all"
    if isinstance(value, (ast.Tuple, ast.List)) and len(value.elts) == 2:
        lock_node, mode_node = value.elts
        if (isinstance(lock_node, ast.Constant)
                and isinstance(lock_node.value, str)
                and isinstance(mode_node, ast.Constant)
                and isinstance(mode_node.value, str)):
            mode = mode_node.value
            if mode in ("all", "writes"):
                return lock_node.value, mode
    return None


def _collect_guards(tree: ast.Module) -> Tuple[
        Dict[str, List[GuardEntry]], Dict[str, Dict[str, Any]]]:
    """(guards-by-attr, per-class info) from a module's declarations.

    Per-class info records, for CC502/CC503: the lock attributes the
    class creates, its thread-local attributes, and its sync-primitive
    attributes.
    """
    guards: Dict[str, List[GuardEntry]] = {}
    classes: Dict[str, Dict[str, Any]] = {}

    def record_guard_map(node: ast.AST, owner: str,
                         module_level: bool) -> None:
        if not isinstance(node, ast.Dict):
            return
        for key, value in zip(node.keys, node.values):
            if not (isinstance(key, ast.Constant)
                    and isinstance(key.value, str)):
                continue
            parsed = _parse_guard_value(value)
            if parsed is None:
                continue
            lock, mode = parsed
            entry = GuardEntry(key.value, lock, mode, owner,
                               module_level=module_level)
            guards.setdefault(key.value, []).append(entry)
            if owner:
                classes[owner]["declared"][key.value] = entry

    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and \
                        target.id == "_GUARDED_BY":
                    record_guard_map(node.value, "", module_level=True)
        if not isinstance(node, ast.ClassDef):
            continue
        info: Dict[str, Any] = {
            "declared": {}, "locks": {}, "sync": set(),
            "thread_local": set(), "node": node,
        }
        classes[node.name] = info
        for item in node.body:
            if isinstance(item, ast.Assign):
                for target in item.targets:
                    if isinstance(target, ast.Name) and \
                            target.id == "_GUARDED_BY":
                        record_guard_map(item.value, node.name,
                                         module_level=False)
        # Lock / sync-primitive attributes created in any method.
        for item in ast.walk(node):
            if not isinstance(item, ast.Assign):
                continue
            if not isinstance(item.value, ast.Call):
                continue
            _, ctor = _call_name(item.value)
            for target in item.targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    if ctor in _LOCK_CONSTRUCTORS:
                        info["locks"][target.attr] = item.lineno
                    if ctor in _SYNC_CONSTRUCTORS:
                        info["sync"].add(target.attr)
                    if ctor == "local":
                        info["thread_local"].add(target.attr)
    return guards, classes


# ---------------------------------------------------------------------------
# Access classification
# ---------------------------------------------------------------------------


def _classify_access(node: ast.Attribute) -> str:
    """"read" | "write" for an attribute access node.

    Writes: direct store/del/augassign targets, stores *through* the
    attribute (``x.stats.field = v`` writes ``stats``), and in-place
    mutator calls (``x._records.append(...)``).
    """
    if isinstance(node.ctx, (ast.Store, ast.Del)):
        return "write"
    parent = _parent(node)
    # x.attr.inner = v  /  x.attr.inner += v  /  x.attr[k] = v
    current, prev = parent, node
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        if isinstance(current.ctx, (ast.Store, ast.Del)):
            return "write"
        prev, current = current, _parent(current)
    # mutator call: Call(func=Attribute(attr in mutators, value=node))
    if (isinstance(parent, ast.Attribute)
            and parent.attr in _MUTATOR_METHODS):
        grand = _parent(parent)
        if isinstance(grand, ast.Call) and grand.func is parent:
            return "write"
    return "read"


def _with_contexts(node: ast.AST) -> List[str]:
    """Unparsed context expressions of every enclosing ``with``.

    The walk stops at method / top-level function boundaries but keeps
    going through *closures*: a helper defined inside a ``with lock:``
    block runs under that lock (the closure cannot outlive the block in
    this codebase's idiom, and treating it otherwise would flag every
    locked finalization helper).
    """
    contexts: List[str] = []
    current = _parent(node)
    while current is not None:
        if isinstance(current, (ast.With, ast.AsyncWith)):
            for item in current.items:
                contexts.append(_unparse(item.context_expr))
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            enclosing = _parent(current)
            if isinstance(enclosing, (ast.ClassDef, ast.Module)):
                break  # a method or top-level function: lock scope ends
        elif isinstance(current, ast.ClassDef):
            break
        current = _parent(current)
    return contexts


def _receiver_of(node: ast.Attribute) -> Optional[str]:
    """The receiver expression text, for simple receivers only."""
    base = node.value
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        return _unparse(base)
    return None


def _in_constructor_of_receiver(node: ast.AST, receiver: str) -> bool:
    """Is this access inside ``__init__``/``__new__`` with the receiver
    being the object under construction (``self``)?"""
    if receiver != "self":
        return False
    function = _enclosing_function(node)
    return function is not None and function.name in ("__init__", "__new__")


# ---------------------------------------------------------------------------
# CC501 / CC502: guarded-by discipline
# ---------------------------------------------------------------------------


def _check_guarded_accesses(tree: ast.Module, guards, classes,
                            source_lines, emitter: Emitter,
                            filename: str) -> None:
    class_names = set(classes)

    def check_access(node: ast.AST, attr: str, receiver: Optional[str],
                     access: str, lineno: int) -> None:
        entries = guards.get(attr)
        if not entries:
            return
        if receiver is None or receiver in class_names:
            return  # class-level declaration or complex receiver
        if _in_constructor_of_receiver(node, receiver):
            return  # the object is not shared yet
        if _line_pragma(source_lines, lineno, "guarded-by"):
            return
        relevant = [e for e in entries
                    if access == "write" or e.mode == "all"]
        if not relevant:
            return
        contexts = _with_contexts(node)
        required = [e.required_context(receiver) for e in entries]
        if any(context in required for context in contexts):
            return
        verb = "written" if access == "write" else "read"
        emitter.emit(
            "CC501",
            f"guarded attribute {receiver}.{attr} is {verb} outside "
            f"'with {required[0]}:'",
            f"{filename}:{lineno}",
            hint="hold the declared lock, or annotate the line with "
                 "'# guarded-by: ok(<reason>)' if the access is safe "
                 "by protocol",
        )

    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute):
            access = _classify_access(node)
            check_access(node, node.attr, _receiver_of(node), access,
                         node.lineno)
        elif isinstance(node, ast.Call):
            # getattr(obj, "_attr", ...) / setattr(obj, "_attr", v)
            _, name = _call_name(node)
            if name in ("getattr", "setattr") and len(node.args) >= 2:
                attr_node = node.args[1]
                if (isinstance(attr_node, ast.Constant)
                        and isinstance(attr_node.value, str)):
                    receiver = _unparse(node.args[0])
                    access = "write" if name == "setattr" else "read"
                    check_access(node, attr_node.value, receiver, access,
                                 node.lineno)


def _check_dead_locks(tree: ast.Module, classes, emitter: Emitter,
                      filename: str) -> None:
    acquired: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                context = item.context_expr
                if isinstance(context, ast.Attribute):
                    acquired.add(context.attr)
                elif isinstance(context, ast.Name):
                    acquired.add(context.id)
                elif isinstance(context, ast.Call):
                    # with lock_holder.some_lock() style helpers
                    _, name = _call_name(context)
                    acquired.add(name)
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and \
                    func.attr in ("acquire", "release"):
                if isinstance(func.value, ast.Attribute):
                    acquired.add(func.value.attr)
                elif isinstance(func.value, ast.Name):
                    acquired.add(func.value.id)
    for class_name, info in classes.items():
        for lock_attr, lineno in sorted(info["locks"].items()):
            if lock_attr not in acquired:
                emitter.emit(
                    "CC502",
                    f"{class_name}.{lock_attr} is created but never "
                    "acquired in this module",
                    f"{filename}:{lineno}",
                    hint="acquire it around the state it guards, or "
                         "delete it — a dead lock advertises a "
                         "discipline that does not exist",
                )


# ---------------------------------------------------------------------------
# CC503: worker entry points sharing undeclared state
# ---------------------------------------------------------------------------


def _thread_targets(function: ast.AST) -> Set[str]:
    """Names of methods this function hands to ``threading.Thread``."""
    targets: Set[str] = set()
    local_aliases: Dict[str, Set[str]] = {}
    for node in ast.walk(function):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                methods = {
                    sub.attr for sub in ast.walk(node.value)
                    if isinstance(sub, ast.Attribute)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id == "self"
                }
                if methods:
                    local_aliases[target.id] = methods
    for node in ast.walk(function):
        if not isinstance(node, ast.Call):
            continue
        _, name = _call_name(node)
        if name != "Thread":
            continue
        for keyword in node.keywords:
            if keyword.arg != "target":
                continue
            value = keyword.value
            if (isinstance(value, ast.Attribute)
                    and isinstance(value.value, ast.Name)
                    and value.value.id == "self"):
                targets.add(value.attr)
            elif isinstance(value, ast.Name):
                targets.update(local_aliases.get(value.id, set()))
    return targets


def _check_worker_writes(tree: ast.Module, guards, classes, source_lines,
                         emitter: Emitter, filename: str) -> None:
    for class_name, info in classes.items():
        node = info["node"]
        methods = {
            item.name: item for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        entry_points: Set[str] = set()
        for method in methods.values():
            entry_points.update(
                name for name in _thread_targets(method) if name in methods
            )
        if not entry_points:
            continue
        # Transitive closure over same-class calls from the entry points.
        reachable: Set[str] = set()
        frontier = list(entry_points)
        while frontier:
            name = frontier.pop()
            if name in reachable or name not in methods:
                continue
            reachable.add(name)
            for sub in ast.walk(methods[name]):
                if isinstance(sub, ast.Call):
                    func = sub.func
                    if (isinstance(func, ast.Attribute)
                            and isinstance(func.value, ast.Name)
                            and func.value.id == "self"
                            and func.attr in methods):
                        frontier.append(func.attr)
        exempt = info["sync"] | info["thread_local"] | set(info["locks"])
        for name in sorted(reachable):
            method = methods[name]
            for sub in ast.walk(method):
                if not isinstance(sub, ast.Attribute):
                    continue
                if _classify_access(sub) != "write":
                    continue
                attr = sub.attr
                receiver = _receiver_of(sub)
                if receiver is None:
                    continue
                if attr in guards or attr in exempt:
                    continue
                # Writes *through* a thread-local or sync primitive
                # (self._local.depth = 1) are private to the thread.
                receiver_tail = receiver.split(".")[-1]
                if receiver_tail in exempt or any(
                        receiver_tail in other["sync"]
                        or receiver_tail in other["thread_local"]
                        for other in classes.values()):
                    continue
                # Attributes of *other* annotated classes may be exempt
                # too (sync primitives declared there).
                if any(attr in other["sync"] or attr in other["locks"]
                       or attr in other["thread_local"]
                       for other in classes.values()):
                    continue
                if _line_pragma(source_lines, sub.lineno, "guarded-by"):
                    continue
                emitter.emit(
                    "CC503",
                    f"worker entry point {class_name}.{name} writes "
                    f"shared attribute {receiver}.{attr}, which no "
                    "_GUARDED_BY map declares",
                    f"{filename}:{sub.lineno}",
                    hint="declare the attribute in _GUARDED_BY and hold "
                         "its lock, make it thread-local, or annotate "
                         "with '# guarded-by: ok(<reason>)'",
                )


# ---------------------------------------------------------------------------
# CC504–CC507: nondeterminism sources
# ---------------------------------------------------------------------------


def _seeded_random_call(node: ast.Call) -> bool:
    """``random.Random(seed)`` / ``Random(seed)`` with an explicit seed."""
    _, name = _call_name(node)
    return name in ("Random", "SystemRandom") and bool(
        node.args or node.keywords
    ) and name != "SystemRandom"


def _random_module_names(tree: ast.Module) -> Tuple[Set[str], Set[str]]:
    """(module aliases of ``random``, names imported *from* random)."""
    aliases: Set[str] = set()
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    aliases.add(alias.asname or "random")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                for alias in node.names:
                    if alias.name not in ("Random", "SystemRandom"):
                        names.add(alias.asname or alias.name)
    return aliases, names


def _id_value_allowed(node: ast.Call) -> bool:
    """Is this ``id()`` call used only for identity keying?"""
    parent = _parent(node)
    if isinstance(parent, ast.Subscript):
        return True  # d[id(x)]
    if isinstance(parent, ast.Compare):
        return all(isinstance(op, (ast.In, ast.NotIn, ast.Eq, ast.NotEq,
                                   ast.Is, ast.IsNot))
                   for op in parent.ops)
    if isinstance(parent, ast.Call) and node in parent.args:
        func = parent.func
        if isinstance(func, ast.Attribute) and \
                func.attr in _IDENTITY_SINK_METHODS:
            return True
    return False


def _check_nondeterminism(tree: ast.Module, source_lines,
                          emitter: Emitter, filename: str) -> None:
    random_aliases, random_names = _random_module_names(tree)

    def allowed(node: ast.AST) -> bool:
        return (_line_pragma(source_lines, node.lineno, "nondet")
                or _feeds_best_effort_metric(node))

    # Per-function shallow set-variable inference for CC507.
    set_vars_by_function: Dict[Optional[ast.AST], Set[str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                function = _enclosing_function(node)
                known = set_vars_by_function.setdefault(function, set())
                if _is_set_expr(node.value, known):
                    known.add(target.id)
                else:
                    known.discard(target.id)

    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            receiver, name = _call_name(node)
            where = f"{filename}:{node.lineno}"
            # CC504 — wall clock / scheduler observables
            if ((receiver, name) in _WALL_CLOCK_CALLS
                    or (receiver is not None
                        and name in _SCHEDULING_CALLS)):
                if not allowed(node):
                    emitter.emit(
                        "CC504",
                        f"{_unparse(node.func)}() reads the wall clock "
                        "or scheduler state in a deterministic path",
                        where,
                        hint="advance the VirtualClock instead; real "
                             "time varies run to run.  Best-effort "
                             "metric feeds are allowlisted; otherwise "
                             "annotate '# nondet: ok(<reason>)'",
                    )
            # CC505 — entropy sources
            is_entropy = (
                (receiver, name) in _ENTROPY_CALLS
                or receiver in _ENTROPY_MODULES
                or (receiver in random_aliases
                    and name not in ("Random", "SystemRandom", "seed"))
                or (receiver is None and name in random_names)
                or (name == "SystemRandom")
                or (name == "Random" and receiver in random_aliases
                    and not (node.args or node.keywords))
            )
            if is_entropy and not allowed(node):
                emitter.emit(
                    "CC505",
                    f"{_unparse(node.func)}() draws entropy in a "
                    "deterministic path",
                    where,
                    hint="use a seeded random.Random(seed) instance "
                         "derived from stable inputs",
                )
            # CC506 — id() value escaping
            if (receiver is None and name == "id" and node.args
                    and not _id_value_allowed(node)
                    and not allowed(node)):
                emitter.emit(
                    "CC506",
                    "id() value escapes beyond identity keying; CPython "
                    "addresses differ run to run",
                    where,
                    hint="key containers with id(x) freely, but never "
                         "format, return, or sort by the raw value",
                )
        # CC507 — unordered iteration
        iter_node = None
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iter_node = node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iter_node = node.generators[0].iter
        elif isinstance(node, ast.Call):
            _, name = _call_name(node)
            if name in ("list", "tuple", "join", "enumerate") and node.args:
                iter_node = node.args[0]
        if iter_node is not None:
            function = _enclosing_function(node)
            known = set_vars_by_function.get(function, set())
            if _is_set_expr(iter_node, known) and not allowed(node):
                emitter.emit(
                    "CC507",
                    f"iteration over unordered set "
                    f"{_unparse(iter_node)!r}; element order depends "
                    "on hash seeding",
                    f"{filename}:{node.lineno}",
                    hint="wrap the set in sorted() before iterating",
                )


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def lint_source_concurrency(
    source: str,
    filename: str = "<source>",
    config: Optional[LintConfig] = None,
    result: Optional[LintResult] = None,
) -> LintResult:
    """Run the CC5xx analysis over one module's source text.

    Purely AST-based — nothing is executed, so it is safe on generated
    programs and untrusted files alike.  Syntax errors are *not*
    reported here (``CG301`` owns those); unparsable sources return an
    empty result.
    """
    result = result if result is not None else LintResult()
    emitter = Emitter(result, config)
    try:
        tree = ast.parse(source)
    except (SyntaxError, ValueError):
        return result
    _attach_parents(tree)
    source_lines = source.splitlines()
    guards, classes = _collect_guards(tree)
    _check_guarded_accesses(tree, guards, classes, source_lines, emitter,
                            filename)
    _check_dead_locks(tree, classes, emitter, filename)
    _check_worker_writes(tree, guards, classes, source_lines, emitter,
                         filename)
    _check_nondeterminism(tree, source_lines, emitter, filename)
    return result


def guarded_declarations(source: str) -> Dict[str, Dict[str, Tuple[str, str]]]:
    """``{class_name: {attr: (lock, mode)}}`` parsed from ``source``.

    The runtime sanitizer cross-checks these static declarations against
    observed lock holds (:mod:`repro.analysis.sanitizer`).
    """
    try:
        tree = ast.parse(source)
    except (SyntaxError, ValueError):
        return {}
    _attach_parents(tree)
    _, classes = _collect_guards(tree)
    return {
        name: {
            attr: (entry.lock, entry.mode)
            for attr, entry in info["declared"].items()
        }
        for name, info in classes.items()
        if info["declared"]
    }
