"""Render a conversation's pipeline as a runnable Palimpzest program.

Reproduces Fig. 6: "the final code generated can be seen in Figure 6 ...
users may continue to iterate on the code produced either through the chat
interface or by downloading a Jupyter notebook that contains all inputs and
generated snippets of code."

The emitted source uses only the public ``repro`` API and is executable with
:func:`exec_program` (benchmark E6 re-runs it and compares results).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.chat.workspace import PipelineWorkspace
from repro.core.errors import PalimpzestError


class CodegenError(PalimpzestError):
    """A logged step cannot be rendered as valid Palimpzest code."""


_POLICY_EXPR = {
    "quality": "pz.MaxQuality()",
    "cost": "pz.MinCost()",
    "runtime": "pz.MinTime()",
}

_CARDINALITY_EXPR = {
    "one_to_one": "pz.Cardinality.ONE_TO_ONE",
    "one_to_many": "pz.Cardinality.ONE_TO_MANY",
}


def generate_program(workspace: PipelineWorkspace) -> str:
    """Emit the Fig. 6-style program for the steps logged so far."""
    lines: List[str] = [
        "import repro as pz",
        "",
    ]
    policy_expr = "pz.MaxQuality()"
    emitted_pipeline = False

    for step in workspace.steps:
        if step.kind == "load":
            lines.append("# Set input dataset")
            lines.append(
                f"dataset = pz.Dataset(source={step.params['source']!r})"
            )
            lines.append("")
            emitted_pipeline = True
        elif step.kind == "filter":
            lines.append("# Filter dataset")
            lines.append(
                f"dataset = dataset.filter({step.params['predicate']!r})"
            )
            lines.append("")
        elif step.kind == "schema":
            name = step.params["name"]
            lines.append("# Create new schema")
            lines.append(f"{name} = pz.make_schema(")
            lines.append(f"    {name!r},")
            lines.append(f"    {step.params['description']!r},")
            lines.append(f"    {step.params['field_names']!r},")
            lines.append(
                "    field_descriptions="
                f"{step.params['field_descriptions']!r},"
            )
            lines.append(")")
            lines.append("")
        elif step.kind == "convert":
            key = str(step.params.get("cardinality", "one_to_one")).lower()
            if key not in _CARDINALITY_EXPR:
                raise CodegenError(
                    f"unknown cardinality {key!r} in convert step; "
                    f"expected one of {sorted(_CARDINALITY_EXPR)}"
                )
            cardinality = _CARDINALITY_EXPR[key]
            lines.append("# Perform conversion")
            lines.append(
                f"dataset = dataset.convert({step.params['schema']}, "
                f"cardinality={cardinality})"
            )
            lines.append("")
        elif step.kind == "policy":
            key = str(step.params.get("target", "quality")).lower()
            if key not in _POLICY_EXPR:
                raise CodegenError(
                    f"unknown optimization target {key!r} in policy step; "
                    f"expected one of {sorted(_POLICY_EXPR)}"
                )
            policy_expr = _POLICY_EXPR[key]
        elif step.kind == "execute":
            lines.append("# Execute workload")
            lines.append(f"policy = {policy_expr}")
            lines.append(
                "records, execution_stats = pz.Execute(dataset, "
                "policy=policy)"
            )
            lines.append("")

    if not emitted_pipeline:
        return (
            "# No pipeline has been built yet.\n"
            "# Load a dataset through the chat to generate code.\n"
        )
    return "\n".join(lines).rstrip() + "\n"


def exec_program(source: str) -> Dict[str, Any]:
    """Execute a generated program; return its namespace.

    The namespace exposes ``records`` and ``execution_stats`` when the
    program contains an execute step.
    """
    import repro as pz

    namespace: Dict[str, Any] = {"pz": pz}
    exec(compile(source, "<generated-pipeline>", "exec"), namespace)
    return namespace
