"""PalimpChat: the chat layer over Palimpzest + Archytas.

"The PalimpChat interface integrates Palimpzest with Archytas by exposing a
series of tools that the LLM-based agent can leverage.  Essentially, these
tools correspond to templated code snippets that can 1. perform fundamental
Palimpzest operations (e.g., registering a dataset, generating schemas,
filtering records) and 2. orchestrate entire pipelines of transformations."
(§2.3)

Pieces:

* :mod:`repro.chat.workspace` — the mutable pipeline state a conversation
  builds up (current dataset, schemas, policy, results).
* :mod:`repro.chat.tools_pz` — the Palimpzest tool suite exposed to the
  agent (Fig. 2's ``create_schema`` among them).
* :mod:`repro.chat.intent` — the deterministic NL -> tool-call brain that
  replaces the hosted reasoning model (see DESIGN.md substitutions).
* :mod:`repro.chat.codegen` — renders the conversation's pipeline as a
  runnable Palimpzest program (Fig. 6).
* :mod:`repro.chat.notebook` — the Beaker-like notebook substrate: cells,
  state snapshots/restore, ``.ipynb`` export.
* :mod:`repro.chat.session` — ties it all together into a chat session.
"""

from repro.chat.workspace import PipelineWorkspace, PipelineStep
from repro.chat.tools_pz import build_pz_tools
from repro.chat.intent import PalimpChatBrain, plan_requests
from repro.chat.codegen import generate_program
from repro.chat.notebook import Notebook, NotebookCell
from repro.chat.session import PalimpChatSession, ChatResponse

__all__ = [
    "PipelineWorkspace",
    "PipelineStep",
    "build_pz_tools",
    "PalimpChatBrain",
    "plan_requests",
    "generate_program",
    "Notebook",
    "NotebookCell",
    "PalimpChatSession",
    "ChatResponse",
]
