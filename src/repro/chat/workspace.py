"""The pipeline workspace: state a chat conversation builds up."""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Type

from repro.core.cardinality import Cardinality
from repro.core.dataset import Dataset
from repro.core.records import DataRecord
from repro.core.schemas import Schema
from repro.execution.stats import ExecutionStats
from repro.optimizer.policies import MaxQuality, Policy


@dataclass
class PipelineStep:
    """One logical step the conversation added (used for codegen/replay)."""

    kind: str  # "load" | "filter" | "schema" | "convert" | "policy" | ...
    params: Dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.params.items())
        return f"{self.kind}({inner})"


class PipelineWorkspace:
    """Mutable state shared by the PalimpChat tools.

    Tracks the dataset pipeline under construction, the dynamically created
    schemas, the optimization policy, and the latest execution results.
    Snapshots support the Beaker-style "restore previous notebook state"
    feature.
    """

    def __init__(self):
        self.current: Optional[Dataset] = None
        self.schemas: Dict[str, Type[Schema]] = {}
        self.policy: Policy = MaxQuality()
        self.max_workers: int = 1
        #: None = infer from max_workers; else "sequential" | "parallel"
        #: | "pipelined" | "sharded" | "async".
        self.executor: Optional[str] = None
        #: LLM-stage batch size used by the pipelined/sharded executors.
        self.batch_size: int = 1
        #: Shard count for the sharded/async executors; None lets the
        #: optimizer choose the degree.
        self.shards: Optional[int] = None
        self.sample_size: int = 0
        self.steps: List[PipelineStep] = []
        self.last_records: Optional[List[DataRecord]] = None
        self.last_stats: Optional[ExecutionStats] = None
        #: Finalized repro.obs Trace of the last execution (None until a
        #: pipeline has run); explain_execution answers from it.
        self.last_trace: Optional[Any] = None
        #: Canonical ProvenanceGraph of the last execution (None until a
        #: pipeline has run); explain_record answers from it.
        self.last_provenance: Optional[Any] = None
        #: In-memory RunSnapshots of every execution this session, in
        #: order; compare_runs diffs the last two.  Survives reset() —
        #: the runs happened even if the pipeline is discarded.
        self.run_history: List[Any] = []
        #: ResultHandle of the last execution — the addressable reference
        #: (result id + schema + count + fingerprint) chat tools pass
        #: around instead of inlining record payloads.
        self.last_result: Optional[Any] = None
        #: Optional on-disk RunRegistry directory; when set, executions
        #: are also persisted there and reset() prunes it to keep_runs.
        self.runs_dir: Optional[str] = None
        #: Retention applied on reset(): how many runs (in memory, and on
        #: disk when runs_dir is set) survive a workspace reset.
        self.keep_runs: int = 8
        #: State root this workspace lives under (e.g. a tenant's
        #: ``.repro/tenants/<id>/``); ``attach_root`` derives runs_dir
        #: from it.  None = no dedicated root (the historical global
        #: ``.repro/`` behaviour).  Two workspaces with different roots
        #: never share registries.
        self.root: Optional[str] = None
        #: Shared :class:`~repro.llm.usage.BudgetMeter` (tenant quota)
        #: executions charge; None = unmetered.
        self.budget: Optional[Any] = None
        #: Progress callback executions forward executor events to
        #: (``plan_start``/``record_processed``/.../``plan_end``) — the
        #: hook a serving layer streams to clients.
        self.on_progress: Optional[Any] = None
        #: Wall-clock operational telemetry
        #: (:class:`~repro.obs.telemetry.Telemetry`) the serving layer
        #: attaches; executions time optimize/execute phases into it.
        #: None = no operational telemetry (the default, and the only
        #: mode deterministic tests compare against — telemetry may
        #: never influence records/stats/traces/provenance).
        self.telemetry: Optional[Any] = None

    # -- step log ----------------------------------------------------------

    def log_step(self, kind: str, **params) -> PipelineStep:
        step = PipelineStep(kind=kind, params=params)
        self.steps.append(step)
        return step

    def steps_of_kind(self, kind: str) -> List[PipelineStep]:
        return [s for s in self.steps if s.kind == kind]

    # -- schema registry -------------------------------------------------

    def add_schema(self, schema: Type[Schema]) -> None:
        self.schemas[schema.schema_name()] = schema

    def get_schema(self, name: str) -> Type[Schema]:
        try:
            return self.schemas[name]
        except KeyError:
            raise KeyError(
                f"no schema named {name!r} has been created in this session; "
                f"known schemas: {sorted(self.schemas)}"
            ) from None

    # -- tenancy root -----------------------------------------------------

    def attach_root(self, root) -> None:
        """Pin this workspace's persistent state under ``root``.

        Sets ``root`` and derives ``runs_dir`` (``<root>/runs``) from it,
        so every workspace with a distinct root gets its own
        :class:`~repro.obs.registry.RunRegistry` — two tenants in one
        process never collide on the global ``.repro/`` default.
        """
        import os

        self.root = os.fspath(root)
        self.runs_dir = os.path.join(self.root, "runs")

    # -- snapshots (Beaker-style state restore) ---------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Capture enough state to restore this point of the conversation.

        The registry attachment (``root``/``runs_dir``/``keep_runs``) is
        part of the snapshot: restoring a snapshot into a fresh workspace
        must keep pointing at the *same* per-tenant store, not fall back
        to the global ``.repro/`` root.
        """
        return {
            "current": self.current,          # Datasets are immutable chains
            "schemas": dict(self.schemas),
            "policy": self.policy,
            "max_workers": self.max_workers,
            "executor": self.executor,
            "batch_size": self.batch_size,
            "shards": self.shards,
            "sample_size": self.sample_size,
            "steps": copy.deepcopy(self.steps),
            "root": self.root,
            "runs_dir": self.runs_dir,
            "keep_runs": self.keep_runs,
        }

    def restore(self, snapshot: Dict[str, Any]) -> None:
        self.current = snapshot["current"]
        self.schemas = dict(snapshot["schemas"])
        self.policy = snapshot["policy"]
        self.max_workers = snapshot["max_workers"]
        self.executor = snapshot.get("executor")
        self.batch_size = snapshot.get("batch_size", 1)
        self.shards = snapshot.get("shards")
        self.sample_size = snapshot["sample_size"]
        self.steps = copy.deepcopy(snapshot["steps"])
        if "root" in snapshot:
            self.root = snapshot["root"]
        if "runs_dir" in snapshot:
            self.runs_dir = snapshot["runs_dir"]
        if "keep_runs" in snapshot:
            self.keep_runs = snapshot["keep_runs"]
        self.last_records = None
        self.last_stats = None
        self.last_trace = None
        self.last_provenance = None
        self.last_result = None

    # -- disk persistence (service-layer session store) -------------------

    def to_payload(self) -> Dict[str, Any]:
        """A JSON-able snapshot: the step log plus execution settings.

        Unlike :meth:`snapshot` (which holds live objects for in-process
        restore), the payload survives a process restart: every step's
        params are primitives, and :meth:`apply_payload` replays them to
        rebuild the pipeline, schemas, and policy.
        """
        return {
            "steps": [
                {"kind": step.kind, "params": dict(step.params)}
                for step in self.steps
            ],
            "policy": self.policy.describe(),
            "max_workers": self.max_workers,
            "executor": self.executor,
            "batch_size": self.batch_size,
            "shards": self.shards,
            "sample_size": self.sample_size,
            "keep_runs": self.keep_runs,
        }

    def apply_payload(self, payload: Dict[str, Any]) -> None:
        """Rebuild workspace state from :meth:`to_payload` output.

        Pipeline-building steps (load/schema/filter/convert/policy and
        the execution-mode settings) are replayed to reconstruct the
        live ``current`` dataset and schema registry; ``execute`` /
        ``rerun`` steps are kept in the log (codegen still shows them)
        but not re-run — their results live in the run registry.
        """
        from repro.core.cardinality import Cardinality
        from repro.core.schemas import make_schema
        from repro.optimizer.policies import parse_policy

        self.max_workers = int(payload.get("max_workers", 1))
        self.executor = payload.get("executor")
        self.batch_size = int(payload.get("batch_size", 1))
        self.shards = payload.get("shards")
        self.sample_size = int(payload.get("sample_size", 0))
        self.keep_runs = int(payload.get("keep_runs", self.keep_runs))
        self.current = None
        self.schemas = {}
        self.steps = []
        for entry in payload.get("steps", []):
            kind = entry["kind"]
            params = dict(entry.get("params", {}))
            if kind == "load":
                self.current = Dataset(source=params["source"])
            elif kind == "schema":
                self.add_schema(make_schema(
                    params["name"],
                    params.get("description", ""),
                    list(params.get("field_names", [])),
                    field_descriptions=list(
                        params.get("field_descriptions", [])),
                ))
            elif kind == "filter" and self.current is not None:
                self.current = self.current.filter(params["predicate"])
            elif kind == "convert" and self.current is not None:
                self.current = self.current.convert(
                    self.get_schema(params["schema"]),
                    cardinality=Cardinality.parse(
                        params.get("cardinality", "one_to_one")),
                )
            elif kind == "policy":
                self.policy = parse_policy(params["target"])
            elif kind == "parallelism":
                self.max_workers = int(params["workers"])
            elif kind == "execution_mode":
                self.executor = params.get("executor")
                self.batch_size = int(params.get("batch_size", 1))
                self.shards = params.get("shards")
            # execute/rerun and unknown kinds: log-only (below).
            self.steps.append(PipelineStep(kind=kind, params=params))
        if "policy" in payload and not any(
                s.kind == "policy" for s in self.steps):
            try:
                self.policy = parse_policy(payload["policy"])
            except ValueError:
                # Constrained policies (e.g. "max-quality@cost($1.00)")
                # don't parse back from describe(); keep the default —
                # a replayed "policy" step would have restored it above.
                pass

    def reset(self) -> None:
        self.current = None
        self.schemas = {}
        self.policy = MaxQuality()
        self.steps = []
        self.last_records = None
        self.last_stats = None
        self.last_trace = None
        self.last_provenance = None
        self.last_result = None
        self.prune_runs()

    def prune_runs(self) -> List[str]:
        """Apply the ``keep_runs`` retention to session and disk history.

        Trims ``run_history`` to the newest ``keep_runs`` snapshots and,
        when a ``runs_dir`` is attached, prunes the persistent
        :class:`~repro.obs.registry.RunRegistry` the same way.  Returns
        the run ids pruned from disk (empty when none / no registry).
        """
        if self.keep_runs is not None and len(self.run_history) > self.keep_runs:
            del self.run_history[: len(self.run_history) - self.keep_runs]
        if self.runs_dir is None:
            return []
        from repro.obs.registry import RunRegistry

        return RunRegistry(self.runs_dir).prune(keep_last=self.keep_runs)

    def describe_pipeline(self) -> str:
        if self.current is None:
            return "(no pipeline yet — load a dataset first)"
        plan = self.current.logical_plan().describe()
        return f"{plan}  [policy: {self.policy.describe()}]"
