"""The Beaker-like notebook substrate.

"Beaker is an implementation of computational notebooks that integrates AI
capabilities into the interactive coding environment ... along with
comprehensive state management that allows users to restore previous
notebook states." (§2.3)

This module provides the pieces PalimpChat needs from Beaker: an ordered
cell document (chat turns, generated code, outputs), per-turn state
snapshots with restore, and export to a Jupyter ``.ipynb`` file a user can
download and keep iterating on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.chat.workspace import PipelineWorkspace

NBFORMAT_VERSION = 4


@dataclass
class NotebookCell:
    """One notebook cell.

    ``kind`` is ``"markdown"`` (chat turns render as markdown) or
    ``"code"`` (generated pipeline snippets); ``outputs`` holds the textual
    results attached to code cells.
    """

    kind: str
    source: str
    outputs: List[str] = field(default_factory=list)

    def to_ipynb(self) -> Dict[str, Any]:
        if self.kind == "markdown":
            return {
                "cell_type": "markdown",
                "metadata": {},
                "source": self.source.splitlines(keepends=True),
            }
        return {
            "cell_type": "code",
            "execution_count": None,
            "metadata": {},
            "source": self.source.splitlines(keepends=True),
            "outputs": [
                {
                    "output_type": "stream",
                    "name": "stdout",
                    "text": output.splitlines(keepends=True),
                }
                for output in self.outputs
            ],
        }


class Notebook:
    """Cells + state snapshots for one chat session."""

    def __init__(self, title: str = "PalimpChat session"):
        self.title = title
        self.cells: List[NotebookCell] = []
        self._snapshots: List[Dict[str, Any]] = []

    # -- cells --------------------------------------------------------------

    def add_markdown(self, source: str) -> NotebookCell:
        cell = NotebookCell(kind="markdown", source=source)
        self.cells.append(cell)
        return cell

    def add_code(self, source: str,
                 outputs: Optional[List[str]] = None) -> NotebookCell:
        cell = NotebookCell(kind="code", source=source,
                            outputs=list(outputs or []))
        self.cells.append(cell)
        return cell

    def __len__(self) -> int:
        return len(self.cells)

    # -- state management ---------------------------------------------------

    def snapshot_state(self, workspace: PipelineWorkspace) -> int:
        """Capture the workspace after a turn; returns the snapshot index."""
        self._snapshots.append(workspace.snapshot())
        return len(self._snapshots) - 1

    @property
    def snapshot_count(self) -> int:
        return len(self._snapshots)

    def restore_state(self, index: int, workspace: PipelineWorkspace) -> None:
        """Restore the workspace to a previous snapshot (Beaker's rewind)."""
        if not -len(self._snapshots) <= index < len(self._snapshots):
            raise IndexError(
                f"snapshot index {index} out of range "
                f"[0, {len(self._snapshots)})"
            )
        workspace.restore(self._snapshots[index])
        # Snapshots after the restore point no longer describe the timeline.
        if index >= 0:
            del self._snapshots[index + 1:]

    # -- export -------------------------------------------------------------

    def to_ipynb(self) -> Dict[str, Any]:
        header = NotebookCell(kind="markdown", source=f"# {self.title}")
        return {
            "nbformat": NBFORMAT_VERSION,
            "nbformat_minor": 5,
            "metadata": {
                "kernelspec": {
                    "display_name": "Python 3",
                    "language": "python",
                    "name": "python3",
                },
                "palimpchat": {"generator": "repro", "title": self.title},
            },
            "cells": [header.to_ipynb()]
            + [cell.to_ipynb() for cell in self.cells],
        }

    def save(self, path) -> Path:
        """Write the notebook as a ``.ipynb`` JSON document."""
        path = Path(path)
        path.write_text(json.dumps(self.to_ipynb(), indent=1))
        return path
