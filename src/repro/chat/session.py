"""The PalimpChat session: agent + tools + workspace + notebook."""

from __future__ import annotations

import contextlib
import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.agent.react import AgentResult, ReActAgent
from repro.chat.codegen import generate_program
from repro.chat.intent import PalimpChatBrain
from repro.chat.notebook import Notebook
from repro.chat.tools_pz import build_pz_tools
from repro.chat.workspace import PipelineWorkspace
from repro.llm.clock import VirtualClock
from repro.llm.models import ModelCard, get_model
from repro.llm.usage import UsageLedger
from repro.obs.trace import NULL_TRACER, SpanKind, Trace, Tracer


@dataclass
class ChatResponse:
    """What one chat turn returns to the caller/UI."""

    text: str
    tool_sequence: List[str] = field(default_factory=list)
    result: Optional[AgentResult] = None
    snapshot_index: int = -1

    def __str__(self) -> str:
        return self.text


class PalimpChatSession:
    """A conversational session for building and running AI pipelines.

    >>> session = PalimpChatSession()
    >>> reply = session.chat("load the papers from ./papers")  # doctest: +SKIP

    Args:
        agent_model: model card (or name) metering the agent's reasoning
            steps; must be reasoning-capable.
        max_workers: execution parallelism for pipelines run via chat.
        sample_size: optimizer sentinel sample size for chat-run pipelines.
        title: notebook title.
        trace: record a session-level trace — a ``chat.turn`` span per
            message with the agent's steps, intent routing, and tool
            invocations nested beneath (``session_trace()`` finalizes it).
            Pipeline executions additionally record their own run trace
            into ``workspace.last_trace`` regardless of this flag.
        on_event: session lifecycle hook — a callable receiving event
            dicts as the session works: ``turn_start`` / ``turn_end``
            around every :meth:`chat` call, with execution progress
            events (``plan_start`` / ``record_processed`` / ...)
            in between while a pipeline runs.  The serving layer points
            this at a per-turn progress buffer; it is swappable at any
            time via the ``on_event`` attribute.
    """

    def __init__(
        self,
        agent_model: Optional[str] = "gpt-4o",
        max_workers: int = 1,
        sample_size: int = 0,
        title: str = "PalimpChat session",
        trace: bool = True,
        on_event=None,
    ):
        self.on_event = on_event
        self.workspace = PipelineWorkspace()
        self.workspace.max_workers = max_workers
        self.workspace.sample_size = sample_size
        self.workspace.on_progress = self._emit_event
        self.registry = build_pz_tools(self.workspace)
        self.agent_ledger = UsageLedger()
        self.agent_clock = VirtualClock()
        self.tracer = Tracer(clock=self.agent_clock) if trace else NULL_TRACER
        self.brain = PalimpChatBrain(self.workspace, tracer=self.tracer)
        model: Optional[ModelCard] = (
            get_model(agent_model) if agent_model else None
        )
        self.agent = ReActAgent(
            registry=self.registry,
            brain=self.brain,
            model=model,
            clock=self.agent_clock,
            ledger=self.agent_ledger,
            max_steps=16,
            tracer=self.tracer,
        )
        self.notebook = Notebook(title=title)
        self.turns: List[ChatResponse] = []
        # The Beaker-style notebook kernel: a persistent namespace where
        # expert users iterate on the generated code directly.
        import repro as _pz

        self.kernel: Dict[str, Any] = {"pz": _pz}

    # -- conversation -----------------------------------------------------

    def _emit_event(self, event: Dict[str, Any]) -> None:
        """Forward one lifecycle/progress event to the hook (if any)."""
        hook = self.on_event
        if hook is not None:
            hook(event)

    def chat(self, message: str) -> ChatResponse:
        """Process one user message through the ReAct agent."""
        self._emit_event({
            "type": "turn_start",
            "turn": len(self.turns),
            "message_chars": len(message),
        })
        self.notebook.add_markdown(f"**User:** {message}")
        try:
            with self.tracer.span(
                "chat.turn", SpanKind.CHAT, clock=self.agent_clock,
                turn=len(self.turns), message_chars=len(message),
            ) as turn_span:
                result = self.agent.run(message, state={})
                if self.tracer.enabled:
                    turn_span.set_attribute(
                        "tools", result.trace.tool_sequence()
                    )
        except Exception as exc:
            # Errored turns still close their lifecycle on the event
            # stream (the serving layer logs and streams these); the
            # exception itself propagates to the caller unchanged.
            self._emit_event({
                "type": "turn_error",
                "turn": len(self.turns),
                "error": f"{type(exc).__name__}: {exc}",
            })
            raise

        # Record generated code for pipeline-building turns.
        code = generate_program(self.workspace)
        tool_sequence = result.trace.tool_sequence()
        built_pipeline = any(
            name in ("load_dataset", "filter_dataset", "convert_dataset",
                     "create_schema", "execute_pipeline")
            for name in tool_sequence
        )
        if built_pipeline:
            self.notebook.add_code(code, outputs=[result.answer])
        else:
            self.notebook.add_markdown(f"**PalimpChat:** {result.answer}")

        snapshot_index = self.notebook.snapshot_state(self.workspace)
        response = ChatResponse(
            text=result.answer,
            tool_sequence=tool_sequence,
            result=result,
            snapshot_index=snapshot_index,
        )
        self.turns.append(response)
        self._emit_event({
            "type": "turn_end",
            "turn": len(self.turns) - 1,
            "tools": list(tool_sequence),
            "reply_chars": len(result.answer),
        })
        return response

    def restore(self, snapshot_index: int) -> None:
        """Rewind the workspace to an earlier turn (Beaker state restore)."""
        self.notebook.restore_state(snapshot_index, self.workspace)

    def run_code(self, source: str) -> str:
        """Execute Python in the session's notebook kernel.

        "Expert users can either further iterate on the code produced using
        the chat interface, or program their pipelines directly" (§1) —
        this is that path: the kernel namespace persists across calls, has
        ``pz`` (the repro API) preloaded, and each execution is recorded as
        a notebook code cell with its captured stdout.

        Returns the captured stdout (empty string if the code printed
        nothing).  Exceptions propagate to the caller after the failed
        cell is recorded.
        """
        stdout = io.StringIO()
        try:
            with contextlib.redirect_stdout(stdout):
                exec(compile(source, "<palimpchat-kernel>", "exec"),
                     self.kernel)
        except Exception as exc:
            self.notebook.add_code(
                source, outputs=[f"{type(exc).__name__}: {exc}"]
            )
            raise
        output = stdout.getvalue()
        self.notebook.add_code(source, outputs=[output] if output else [])
        return output

    def lint(self):
        """Statically check the pipeline built so far.

        Returns the :class:`~repro.analysis.LintResult` for the current
        pipeline (empty when no dataset is loaded yet).  The same check
        runs automatically before ``execute_pipeline``, surfacing
        error-level findings as a chat reply instead of a mid-run crash.
        """
        from repro.analysis import LintResult, lint_plan

        if self.workspace.current is None:
            return LintResult()
        return lint_plan(self.workspace.current)

    # -- artifacts ---------------------------------------------------------

    def generated_code(self) -> str:
        """The Fig. 6-style program for the pipeline built so far."""
        return generate_program(self.workspace)

    def export_notebook(self, path) -> Path:
        """Save the session as a Jupyter notebook the user can download."""
        return self.notebook.save(path)

    def agent_cost_usd(self) -> float:
        """Simulated spend of the agent's own reasoning calls."""
        return self.agent_ledger.total().cost_usd

    def session_trace(self) -> Trace:
        """Finalize the session-level trace recorded so far (one
        ``chat.turn`` root per message; empty when tracing is off)."""
        return self.tracer.finish()

    @property
    def last_trace(self):
        """Execution trace of the last pipeline run via chat (or None)."""
        return self.workspace.last_trace

    @property
    def last_records(self):
        return self.workspace.last_records

    @property
    def last_stats(self):
        return self.workspace.last_stats

    @property
    def last_provenance(self):
        """ProvenanceGraph of the last pipeline run via chat (or None)."""
        return self.workspace.last_provenance

    @property
    def run_history(self):
        """RunSnapshots of every pipeline execution in this session."""
        return self.workspace.run_history
