"""The Palimpzest tool suite exposed to the Archytas agent.

Each tool is a documented function (the docstring is the contract the
reasoning agent sees, exactly as in Fig. 2) closed over a
:class:`~repro.chat.workspace.PipelineWorkspace`.  The ``create_schema`` tool
reproduces the paper's Fig. 2 example — including the dynamic
``type(class_name, (Schema,), attributes)`` construction, here delegated to
:func:`repro.core.schemas.make_schema`.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional

from repro.agent.tools import AgentRef, Tool, ToolError, ToolRegistry, tool
from repro.chat.workspace import PipelineWorkspace
from repro.core.cardinality import Cardinality
from repro.core.dataset import Dataset
from repro.core.schemas import make_schema
from repro.core.sources import global_source_registry
from repro.execution.execute import Execute
from repro.optimizer.policies import parse_policy


def build_pz_tools(workspace: PipelineWorkspace) -> ToolRegistry:
    """Construct the tool registry bound to ``workspace``."""

    def _snapshot_run(records, stats):
        """Record one execution and publish its result as a handle.

        The snapshot joins the in-session ``run_history`` (and the
        persistent registry when ``workspace.runs_dir`` is set), and
        ``workspace.last_result`` becomes its :class:`ResultHandle` —
        the result *id* is what tool messages carry; ``show_records``
        slices the records on demand.
        """
        from repro.obs.registry import RunRegistry, RunSnapshot

        if workspace.runs_dir is not None:
            registry = RunRegistry(workspace.runs_dir)
            snapshot = RunSnapshot.from_execution(
                registry.next_run_id(), records, stats
            )
            registry.save(snapshot)
        else:
            snapshot = RunSnapshot.from_execution(
                f"run-{len(workspace.run_history) + 1}", records, stats
            )
        workspace.run_history.append(snapshot)
        workspace.last_result = snapshot.handle()
        return snapshot

    def _find_handle(result_id: str):
        """Resolve a result id to a handle: last result, session history,
        then the persistent registry (when attached)."""
        if not result_id:
            if workspace.last_result is None:
                raise ToolError("nothing has been executed yet")
            return workspace.last_result
        if (workspace.last_result is not None
                and workspace.last_result.result_id == result_id):
            return workspace.last_result
        for snapshot in reversed(workspace.run_history):
            if snapshot.run_id == result_id:
                return snapshot.handle()
        if workspace.runs_dir is not None:
            from repro.obs.registry import RunRegistry

            try:
                return RunRegistry(workspace.runs_dir).handle(result_id)
            except FileNotFoundError:
                pass
        known = [s.run_id for s in workspace.run_history]
        raise ToolError(
            f"no result {result_id!r} in this session; "
            f"known results: {known or '<none>'}"
        )

    @tool()
    def load_dataset(source: str, agent: AgentRef = None) -> str:
        """Set the input dataset of the pipeline.

        Use this tool first, before filtering or converting.  The source may
        be the path of a local folder (every file becomes one record, with
        the native schema chosen from the file extension — PDFs become
        PDFFile records) or the name of a registered dataset.

        Args:
            source: a folder path or a registered dataset id.

        Examples:
            load_dataset(source="./papers")
            load_dataset(source="sigmod-demo")
        """
        dataset = Dataset(source=source)
        workspace.current = dataset
        workspace.log_step(
            "load",
            source=source,
            schema=dataset.schema.schema_name(),
            records=len(dataset.source),
        )
        return (
            f"Loaded dataset {dataset.source.dataset_id!r}: "
            f"{len(dataset.source)} records with schema "
            f"{dataset.schema.schema_name()}."
        )

    @tool()
    def create_schema(
        schema_name: str,
        schema_description: str,
        field_names: list,
        field_descriptions: list,
        agent: AgentRef = None,
    ) -> str:
        """Generate a new extraction schema.

        This tool should be used to generate a new extraction schema.  The
        inputs are a schema name and a set of fields.  For example, if the
        user is interested in extracting author information from a paper,
        the schema name might be 'Author' and the fields may be 'name',
        'email', 'affiliation'.  You should provide a short description for
        each field.  Field names cannot have spaces or special characters.

        Args:
            schema_name: the class name of the new schema.
            schema_description: one sentence describing the schema.
            field_names: list of field identifiers.
            field_descriptions: one description per field, same order.

        Examples:
            create_schema(schema_name="Author", schema_description="Paper author", field_names=["name"], field_descriptions=["The author's name"])
        """
        schema = make_schema(
            schema_name,
            schema_description,
            field_names,
            field_descriptions=field_descriptions,
        )
        workspace.add_schema(schema)
        workspace.log_step(
            "schema",
            name=schema_name,
            description=schema_description,
            field_names=list(field_names),
            field_descriptions=list(field_descriptions),
        )
        return (
            f"Created schema {schema_name} with fields "
            f"{list(field_names)}."
        )

    @tool()
    def filter_dataset(predicate: str, agent: AgentRef = None) -> str:
        """Filter the current dataset with a natural-language predicate.

        Keeps only the records that satisfy the predicate.  Use after
        load_dataset.

        Args:
            predicate: the condition records must satisfy, in plain English.

        Examples:
            filter_dataset(predicate="The papers are about colorectal cancer")
        """
        if workspace.current is None:
            raise ToolError("no dataset loaded yet; call load_dataset first")
        workspace.current = workspace.current.filter(predicate)
        workspace.log_step("filter", predicate=predicate)
        return f"Added filter: {predicate!r}."

    @tool()
    def convert_dataset(
        schema_name: str,
        cardinality: str = "one_to_one",
        agent: AgentRef = None,
    ) -> str:
        """Convert the current dataset to a previously created schema.

        Computes the new schema's fields from each record (LLM extraction).
        Use cardinality "one_to_many" when one input record can describe
        several output objects (e.g. several datasets per paper).

        Args:
            schema_name: name of a schema made with create_schema.
            cardinality: "one_to_one" or "one_to_many".

        Examples:
            convert_dataset(schema_name="ClinicalData", cardinality="one_to_many")
        """
        if workspace.current is None:
            raise ToolError("no dataset loaded yet; call load_dataset first")
        schema = workspace.get_schema(schema_name)
        workspace.current = workspace.current.convert(
            schema, cardinality=Cardinality.parse(cardinality)
        )
        workspace.log_step(
            "convert", schema=schema_name, cardinality=cardinality
        )
        return (
            f"Added convert to {schema_name} "
            f"(cardinality: {cardinality})."
        )

    @tool()
    def set_optimization_target(target: str, agent: AgentRef = None) -> str:
        """Choose the optimization goal for plan selection.

        Args:
            target: "quality" (maximize output quality), "cost" (minimize
                dollar cost), or "runtime" (minimize execution time).

        Examples:
            set_optimization_target(target="quality")
        """
        workspace.policy = parse_policy(target)
        workspace.log_step("policy", target=target)
        return f"Optimization target set to {workspace.policy.describe()}."

    @tool()
    def execute_pipeline(agent: AgentRef = None) -> str:
        """Optimize and run the pipeline built so far.

        Palimpzest enumerates the physical plans implementing the logical
        pipeline, picks the best one under the chosen optimization target,
        executes it, and stores the output as an addressable result (the
        message carries the result id; use show_records to page through
        the records, and rerun_pipeline to re-run incrementally after the
        source corpus changes).

        Examples:
            execute_pipeline()
        """
        if workspace.current is None:
            raise ToolError("no dataset loaded yet; call load_dataset first")
        if workspace.budget is not None:
            # Pre-turn budget gate: a fully consumed quota rejects the
            # execution before any optimization or LLM work is spent.
            workspace.budget.precheck()
        from repro.analysis import lint_plan

        lint_result = lint_plan(
            workspace.current,
            shards=workspace.shards if workspace.shards is not None else 1,
        )
        if not lint_result.ok:
            raise ToolError(
                "the pipeline fails static analysis; nothing was "
                "executed.\n" + lint_result.sorted().render()
            )
        records, stats = Execute(
            workspace.current,
            policy=workspace.policy,
            max_workers=workspace.max_workers,
            sample_size=workspace.sample_size,
            executor=workspace.executor,
            batch_size=workspace.batch_size,
            shards=(
                workspace.shards
                if workspace.executor in ("sharded", "async") else None
            ),
            lint=False,  # already linted above, with a friendlier message
            trace=True,  # so explain_execution can answer "what took so long"
            provenance=True,  # so explain_record can answer "why is X here"
            capture_calls=True,  # so rerun_pipeline can replay unchanged docs
            budget=workspace.budget,
            on_event=workspace.on_progress,
            telemetry=workspace.telemetry,
        )
        workspace.last_records = records
        workspace.last_stats = stats
        workspace.last_trace = stats.trace
        workspace.last_provenance = stats.provenance
        snapshot = _snapshot_run(records, stats)
        workspace.log_step(
            "execute",
            policy=workspace.policy.describe(),
            result_id=snapshot.run_id,
            records=len(records),
            cost_usd=round(stats.total_cost_usd, 4),
            time_seconds=round(stats.total_time_seconds, 1),
        )
        handle = workspace.last_result
        return (
            f"Executed pipeline: {handle.describe()} — "
            f"{handle.count} records produced in "
            f"{stats.total_time_seconds:.0f}s at a cost of "
            f"${stats.total_cost_usd:.2f} "
            f"(plan: {stats.plan_stats.plan_describe}). "
            f"Use show_records(result_id={handle.result_id!r}) to view "
            "records."
        )

    @tool()
    def rerun_pipeline(agent: AgentRef = None) -> str:
        """Re-run the pipeline incrementally on the updated corpus.

        Use when the user asks to re-run after the source documents
        changed (files added, edited, or removed).  Diffs the live corpus
        against the previous run's source manifest and recomputes only
        what the delta touches — unchanged documents replay their
        recorded LLM calls — yielding byte-identical records, statistics,
        and provenance at a fraction of the cost.  The message reports
        the delta, the savings, and the new result id.

        Examples:
            rerun_pipeline()
        """
        if workspace.current is None:
            raise ToolError("no dataset loaded yet; call load_dataset first")
        base = None
        for snapshot in reversed(workspace.run_history):
            if snapshot.calls is not None and snapshot.manifest is not None:
                base = snapshot
                break
        if base is None:
            raise ToolError(
                "no prior run with a captured call log to re-run from; "
                "call execute_pipeline first"
            )
        if workspace.budget is not None:
            workspace.budget.precheck()
        # See the updated corpus: if a new source was registered under
        # the same dataset id, swap it into the pipeline's root scan.
        workspace.current.refresh_source()
        records, stats = Execute(
            workspace.current,
            policy=workspace.policy,
            max_workers=workspace.max_workers,
            sample_size=workspace.sample_size,
            executor=workspace.executor,
            batch_size=workspace.batch_size,
            shards=(
                workspace.shards
                if workspace.executor in ("sharded", "async") else None
            ),
            trace=True,
            provenance=True,
            incremental=True,
            base_run=base,
            budget=workspace.budget,
            on_event=workspace.on_progress,
            telemetry=workspace.telemetry,
        )
        workspace.last_records = records
        workspace.last_stats = stats
        workspace.last_trace = stats.trace
        workspace.last_provenance = stats.provenance
        snapshot = _snapshot_run(records, stats)
        report = stats.incremental
        workspace.log_step(
            "rerun",
            base=base.run_id,
            result_id=snapshot.run_id,
            records=len(records),
            mode=report.mode if report is not None else "cold",
        )
        handle = workspace.last_result
        lines = [
            f"Re-ran pipeline from {base.run_id}: {handle.describe()}."
        ]
        if report is not None:
            lines.append(report.render())
        return "\n".join(lines)

    @tool()
    def get_execution_stats(agent: AgentRef = None) -> str:
        """Report runtime, cost, and per-operator statistics of the last run.

        Use when the user asks how long the workload took or how much the
        LLM invocations costed.

        Examples:
            get_execution_stats()
        """
        if workspace.last_stats is None:
            raise ToolError("nothing has been executed yet")
        return workspace.last_stats.summary()

    @tool()
    def explain_execution(agent: AgentRef = None) -> str:
        """Explain where the time went in the last pipeline run.

        Use when the user asks what took so long, why the run was slow, or
        to explain/profile the last run.  Answers from the recorded
        execution trace: the critical path (which pipeline stage or
        operator bounded the runtime), per-operator busy time, and LLM
        call/cache behaviour.

        Examples:
            explain_execution()
        """
        if workspace.last_stats is None:
            raise ToolError("nothing has been executed yet")
        if workspace.last_trace is None:
            raise ToolError(
                "the last run was not traced; execute the pipeline again "
                "to record a trace"
            )
        from repro.obs import aggregate_ops, analyze_critical_path

        stats = workspace.last_stats
        report = analyze_critical_path(workspace.last_trace)
        lines = [report.render()]
        ops = sorted(
            aggregate_ops(workspace.last_trace).items(),
            key=lambda item: -item[1]["busy_seconds"],
        )
        if ops:
            lines.append("")
            lines.append("busiest operators:")
            for name, agg in ops[:5]:
                lines.append(
                    f"  {name:<42} {agg['busy_seconds']:>9.1f}s busy  "
                    f"{agg['records_in']:>4} in / {agg['records_out']:>4} out"
                )
        calls = stats.metrics.get("llm.calls")
        if calls is not None:
            cache_note = (
                f"; {stats.cache_hits} answered from the call cache"
                if stats.cache_hits else ""
            )
            lines.append("")
            lines.append(f"LLM calls: {calls}{cache_note}.")
        return "\n".join(lines)

    @tool()
    def explain_record(
        record_id: int = 0,
        source: str = "",
        agent: AgentRef = None,
    ) -> str:
        """Explain a record of the last run from its provenance graph.

        Use when the user asks why a record is in the output (pass its
        record_id) or why a source document is NOT in the output (pass
        the source name in ``source``).  With neither argument, lists
        the output records with their provenance ids.

        Args:
            record_id: provenance id of an output record to explain.
            source: a source document id/name to trace the fate of.

        Returns:
            a rendered derivation tree (why), fate report (why-not),
            or output-record listing.

        Examples:
            explain_record(record_id=3)
            explain_record(source="paper_007")
        """
        graph = workspace.last_provenance
        if graph is None:
            raise ToolError(
                "no provenance recorded yet; execute the pipeline first"
            )
        from repro.obs import ProvenanceError, render_why, render_why_not

        if source:
            return render_why_not(graph.why_not(source))
        if record_id:
            try:
                return render_why(graph.why(int(record_id)))
            except ProvenanceError as exc:
                raise ToolError(str(exc)) from None
        if not graph.output_ids:
            return "The last execution produced no records to explain."
        lines = ["Output records (ask about one by its #id):"]
        for node_id in graph.output_ids:
            node = graph.node(node_id)
            lines.append(f"  #{node_id} [{node['schema']}] {node['preview']}")
        return "\n".join(lines)

    @tool()
    def compare_runs(agent: AgentRef = None) -> str:
        """Compare the last two pipeline executions of this session.

        Use when the user asks what changed since the last run.  Reports
        plan changes, per-operator cost/time/selectivity deltas, and the
        output records that appeared or disappeared — each explained
        from the runs' provenance graphs.

        Returns:
            the rendered run diff (plan, per-operator, and membership
            deltas).

        Examples:
            compare_runs()
        """
        history = workspace.run_history
        if len(history) < 2:
            raise ToolError(
                "need at least two executions to compare; "
                f"this session has {len(history)}"
            )
        from repro.obs.registry import diff_runs

        return diff_runs(history[-2], history[-1]).render()

    @tool()
    def show_records(
        result_id: str = "",
        offset: int = 0,
        limit: int = 10,
        agent: AgentRef = None,
    ) -> str:
        """Show a window of an execution's output records.

        Results are addressed by id (as reported by execute_pipeline /
        rerun_pipeline) and sliced on demand — the workspace never holds
        record payloads, only handles.  Omit result_id for the latest
        result; page with offset/limit.

        Args:
            result_id: which result to display (default: the latest).
            offset: index of the first record to display.
            limit: maximum number of records to display.

        Examples:
            show_records(limit=5)
            show_records(result_id="run-0002", offset=10, limit=10)
        """
        handle = _find_handle(str(result_id))
        if handle.count == 0:
            return f"Result {handle.result_id} has no records."
        offset = max(0, int(offset))
        window = handle.slice(offset, max(1, int(limit)))
        lines = []
        for index, fields in enumerate(window, start=offset):
            rendered = ", ".join(f"{k}: {v}" for k, v in fields.items())
            lines.append(f"- [{index}] {rendered}")
        remaining = handle.count - (offset + len(window))
        if remaining > 0:
            lines.append(
                f"... and {remaining} more "
                f"(show_records(result_id={handle.result_id!r}, "
                f"offset={offset + len(window)}))"
            )
        lines.append(handle.describe())
        return "\n".join(lines)

    @tool()
    def describe_pipeline(agent: AgentRef = None) -> str:
        """Describe the logical pipeline built so far and the chosen policy.

        Examples:
            describe_pipeline()
        """
        return workspace.describe_pipeline()

    @tool()
    def list_datasets(agent: AgentRef = None) -> str:
        """List the registered dataset ids available to load_dataset.

        Examples:
            list_datasets()
        """
        ids = global_source_registry().list_ids()
        if not ids:
            return "No datasets registered; load a folder path instead."
        return "Registered datasets: " + ", ".join(ids)

    @tool()
    def generate_code(agent: AgentRef = None) -> str:
        """Produce the runnable Palimpzest program for this pipeline.

        Returns Python source equivalent to the conversation so far (the
        code an expert user could iterate on directly).

        Examples:
            generate_code()
        """
        from repro.chat.codegen import generate_program

        return generate_program(workspace)

    @tool()
    def set_parallelism(workers: int, agent: AgentRef = None) -> str:
        """Set how many workers run LLM calls concurrently.

        More workers reduce wall-clock time of a pipeline execution without
        changing its cost.

        Args:
            workers: number of parallel workers (1 = sequential).

        Examples:
            set_parallelism(workers=4)
        """
        workers = int(workers)
        if workers < 1:
            raise ToolError("workers must be >= 1")
        workspace.max_workers = workers
        workspace.log_step("parallelism", workers=workers)
        return f"Pipelines will now execute with {workers} workers."

    @tool()
    def set_execution_mode(
        executor: str,
        batch_size: int = 1,
        shards: Optional[int] = None,
        agent: AgentRef = None,
    ) -> str:
        """Choose how pipelines execute: executor, batch size, shard count.

        The "pipelined" executor runs LLM operators on real worker threads
        connected by bounded queues and can batch LLM calls, amortizing the
        fixed per-call overhead; it produces exactly the same records as the
        other executors, faster.  "sharded" scatters the pipeline over
        deterministic source shards (and "async" fans it out over asyncio
        tasks) — pass ``shards`` to pin the parallelism degree, or leave it
        unset to let the optimizer choose one with the cost model.
        "parallel" models record-level parallelism on virtual-clock lanes;
        "sequential" processes one record at a time.

        Args:
            executor: "sequential", "parallel", "pipelined", "sharded",
                or "async".
            batch_size: records per LLM batch (pipelined/sharded executors;
                1 = one call per record).
            shards: parallelism degree for sharded/async (None = let the
                optimizer choose).

        Examples:
            set_execution_mode(executor="pipelined", batch_size=8)
            set_execution_mode(executor="sharded", shards=4)
            set_execution_mode(executor="async")   # optimizer picks degree
        """
        executor = str(executor).strip().lower()
        valid = ("sequential", "parallel", "pipelined", "sharded", "async")
        if executor not in valid:
            raise ToolError(
                f"unknown executor {executor!r}; "
                f"expected one of {', '.join(valid)}"
            )
        batch_size = int(batch_size)
        if batch_size < 1:
            raise ToolError("batch_size must be >= 1")
        if shards is not None:
            shards = int(shards)
            if shards < 1:
                raise ToolError("shards must be >= 1")
            if executor not in ("sharded", "async"):
                raise ToolError(
                    "shards only applies to the sharded/async executors"
                )
        workspace.executor = executor
        workspace.batch_size = batch_size
        workspace.shards = shards
        workspace.log_step(
            "execution_mode", executor=executor, batch_size=batch_size,
            shards=shards,
        )
        if executor == "pipelined":
            suffix = f" with batch size {batch_size}"
        elif executor in ("sharded", "async"):
            suffix = (
                f" with {shards} shards" if shards is not None
                else " (optimizer chooses the shard count)"
            )
        else:
            suffix = ""
        return f"Pipelines will now use the {executor} executor{suffix}."

    @tool()
    def explain_plans(agent: AgentRef = None) -> str:
        """Show the physical plans the optimizer is considering.

        Prints the enumerated plan space, the Pareto frontier with
        estimated cost/time/quality, and which plan the current
        optimization target would pick — without executing anything.

        Examples:
            explain_plans()
        """
        if workspace.current is None:
            raise ToolError("no dataset loaded yet; call load_dataset first")
        from repro.execution.execute import ExecutionEngine

        engine = ExecutionEngine(
            policy=workspace.policy,
            max_workers=workspace.max_workers,
        )
        return engine.explain(workspace.current)

    @tool()
    def lint_pipeline(agent: AgentRef = None) -> str:
        """Statically check the pipeline built so far without running it.

        Reports unknown field references, dead fields, duplicate or
        contradictory filters, misplaced limits, and aggregate type
        mismatches — each with its rule code and a fix hint.

        Examples:
            lint_pipeline()
        """
        if workspace.current is None:
            raise ToolError("no dataset loaded yet; call load_dataset first")
        from repro.analysis import lint_plan

        lint_result = lint_plan(workspace.current)
        if not lint_result.diagnostics:
            return "Pipeline lint: no findings; the pipeline looks sound."
        return (
            f"Pipeline lint: {lint_result.summary()}.\n"
            + lint_result.sorted().render()
        )

    @tool()
    def reset_pipeline(agent: AgentRef = None) -> str:
        """Discard the pipeline built so far and start over.

        Examples:
            reset_pipeline()
        """
        workspace.reset()
        return "Pipeline reset; load a dataset to start again."

    registry = ToolRegistry()
    for tool_obj in (
        load_dataset,
        create_schema,
        filter_dataset,
        convert_dataset,
        set_optimization_target,
        execute_pipeline,
        rerun_pipeline,
        get_execution_stats,
        explain_execution,
        explain_record,
        compare_runs,
        show_records,
        describe_pipeline,
        list_datasets,
        generate_code,
        set_parallelism,
        set_execution_mode,
        explain_plans,
        lint_pipeline,
        reset_pipeline,
    ):
        registry.register(tool_obj)
    return registry
