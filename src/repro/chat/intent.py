"""The deterministic chat brain: natural language -> tool-call plan.

This module replaces the hosted reasoning model that drives Archytas in the
original demo (see DESIGN.md, substitutions).  It parses a user utterance
into an ordered list of :class:`~repro.agent.react.ToolCall` decisions — the
same decomposition behaviour Fig. 4 shows ("the agent reasons and may decide
to decompose a user question into several tasks required before execution")
— and the ReAct loop executes them one observation at a time.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Tuple

from repro.agent.react import (
    Brain,
    BrainContext,
    Decision,
    FinalAnswer,
    ToolCall,
)
from repro.chat.workspace import PipelineWorkspace
from repro.obs.trace import NULL_TRACER, SpanKind

_STATE_KEY = "_palimpchat_pending"

# ---------------------------------------------------------------------------
# Slot extraction helpers.
# ---------------------------------------------------------------------------

_QUOTED_RE = re.compile(r"\"([^\"]+)\"|'([^']+)'")
_PATH_RE = re.compile(r"(?<![\w/])((?:\.{1,2})?/[\w./\-]+|[\w.\-]+/[\w./\-]+)")
_ARTICLES = frozenset({"the", "a", "an", "its", "their", "any", "all", "each",
                       "every", "whatever", "public", "publicly", "available",
                       "associated", "corresponding", "short"})

_FIELD_HINTS = {
    "url": "The public URL where the item can be accessed",
    "link": "The public URL where the item can be accessed",
    "name": "The name of the item",
    "description": "A short description of the item",
    "date": "The relevant date",
    "email": "The e-mail address",
    "price": "The price in dollars",
    "address": "The street address",
}


def _find_source(clause: str) -> Optional[str]:
    """A quoted string, path-like token, or registered dataset id."""
    quoted = _QUOTED_RE.search(clause)
    if quoted:
        return quoted.group(1) or quoted.group(2)
    path = _PATH_RE.search(clause)
    if path:
        return path.group(1).rstrip(".,;")
    from repro.core.sources import global_source_registry

    lowered = clause.lower()
    for dataset_id in global_source_registry().list_ids():
        if dataset_id.lower() in lowered:
            return dataset_id
    return None


def _identifier(phrase: str) -> str:
    words = [
        w
        for w in re.findall(r"[a-zA-Z][a-zA-Z0-9]*", phrase)
        if w.lower() not in _ARTICLES
    ]
    if not words:
        return ""
    return "_".join(w.lower() for w in words)


def _parse_field_list(text: str) -> List[str]:
    """'the dataset name, description and URL' -> [dataset_name, description, url]."""
    # Stop at clause boundaries that start a new intent.
    text = re.split(
        r"\b(?:for each|from|of the papers|of each)\b", text, maxsplit=1
    )[0]
    parts = re.split(r",|\band\b", text)
    fields = []
    for part in parts:
        # Keep only the head noun phrase: "url for any public dataset used
        # by the study" -> "url".
        head = re.split(
            r"\b(?:for|from|of|used|in|that|which|where|so)\b", part
        )[0]
        identifier = _identifier(head)
        if identifier and identifier not in fields:
            fields.append(identifier)
    return fields


def _field_description(identifier: str) -> str:
    for hint, description in _FIELD_HINTS.items():
        if hint in identifier:
            return description
    pretty = identifier.replace("_", " ")
    return f"The {pretty} extracted from the document"


def _camel(identifier: str) -> str:
    return "".join(part.capitalize() for part in identifier.split("_"))


# ---------------------------------------------------------------------------
# Intent anchors.
# ---------------------------------------------------------------------------

_ANCHORS: List[Tuple[str, re.Pattern]] = [
    ("load", re.compile(
        r"\b(load|upload|ingest|register)\b|\buse\b[^.]*\b(folder|directory|dataset|files)\b",
        re.I)),
    ("filter", re.compile(
        r"\b(filter|keep only|only keep|select only|interested in)\b"
        r"|\bpapers (?:that are )?about\b|\bdocuments about\b",
        re.I)),
    ("schema", re.compile(r"\bcreate (?:a |an )?schema\b", re.I)),
    ("extract", re.compile(r"\bextract(?:ing)?\b", re.I)),
    ("policy", re.compile(
        r"\b(maximi[sz]e|minimi[sz]e|prioriti[sz]e|optimi[sz]e for|cheapest"
        r"|optimization (?:goal|target))\b", re.I)),
    # Before "execute": "explain the last run" contains the word "run", so
    # this anchor must exist for containment suppression to veto execute.
    ("explain_run", re.compile(
        r"\bwhat took so long\b|\bwhy (?:was|is) (?:it|that|the run) "
        r"(?:so )?slow\b"
        r"|\b(?:explain|profile|analy[sz]e|break down)\b[^.]*"
        r"\b(?:last|previous|that|the) (?:run|execution)\b"
        r"|\bwhere did (?:all )?the time go\b|\bcritical path\b"
        r"|\bwhat was the bottleneck\b|\bbounding stage\b", re.I)),
    # Provenance questions — before "execute"/"show" so spans like "what
    # changed since the last run" suppress the contained "run" hit.
    ("why_not", re.compile(
        r"\bwhy (?:isn't|wasn't|aren't|weren't|is not|was not|didn't"
        r"|did not)\b"
        r"|\bwhat happened to\b"
        r"|\bwhy\b[^.?]*\bnot in the (?:output|results?)\b"
        r"|\bwhy (?:is|was)\b[^.?]*\b(?:dropped|filtered out|eliminated"
        r"|excluded|missing|removed)\b", re.I)),
    ("why_record", re.compile(
        r"\bwhy (?:is|was|are|were) (?!not\b|n't)(?:(?!\bnot\b)[^.?])*"
        r"\bin the (?:output|results?)\b"
        r"|\b(?:explain|how was|where did|where does) record\s*#?\d+"
        r"|\bprovenance of\b|\bderivation (?:tree|of)\b", re.I)),
    ("compare_runs", re.compile(
        r"\bwhat(?:'s| is| has)? changed? since (?:the )?(?:last|previous)"
        r" run\b"
        r"|\b(?:compare|diff)\b(?:\s+\w+){0,3}\s+runs\b"
        r"|\b(?:compare|diff)\b(?:\s+\w+){0,2}\s+(?:last|previous) run\b"
        r"|\bhow (?:do|did) the (?:two )?runs differ\b", re.I)),
    # Before "execute": "re-run" and "run it again" contain the word
    # "run", so this longer anchor must exist for containment suppression
    # to veto execute and route to the incremental re-run instead.
    ("rerun", re.compile(
        r"\bre-?run\b(?:[^.?]*\bupdated\b[^.?]*)?"
        r"|\brun (?:it|that|the pipeline) again\b"
        r"|\b(?:run|execute|recompute)\b[^.?]*\bupdated "
        r"(?:corpus|data|dataset|documents|files)\b"
        r"|\bincremental(?:ly)?\b[^.?]*\b(?:run|execution|re-?run)\b",
        re.I)),
    ("execute", re.compile(r"\b(run|execute|launch|process the)\b", re.I)),
    ("stats", re.compile(
        r"\bhow (?:much|long)\b|\bstatistics\b|\bstats\b|\bcosted\b"
        r"|\bwhat did (?:it|this) cost\b", re.I)),
    ("show", re.compile(
        r"\b(show|display|visuali[sz]e)\b|\bwhat (?:did you|was) (?:find|found|extracted)\b",
        re.I)),
    ("code", re.compile(r"\b(code|notebook|export|download)\b", re.I)),
    ("workers", re.compile(
        r"\b(?:use|with|set)\s+(\d+)\s+(?:parallel\s+)?workers?\b"
        r"|\bin parallel\b", re.I)),
    ("executor", re.compile(
        r"\b(?:sequential|parallel|pipelined|sharded|async(?:io)?)"
        r"\s+(?:executor|engine|execution|mode)\b"
        r"|\bexecution mode\b|\bexecutor\b|\bbatch size\b"
        r"|\b\d+\s+shards?\b|\bshard(?:ed)?\s+(?:the\s+)?(?:pipeline|execution)\b",
        re.I)),
    ("explain", re.compile(
        r"\b(explain|compare|what) (?:the )?(physical )?plans?\b"
        r"|\bplan space\b|\bwhich plan\b", re.I)),
    ("lint", re.compile(
        r"\blint\b|\b(?:validate|sanity[- ]check|check)\b[^.]*\bpipeline\b"
        r"|\bany (?:problems|mistakes|issues) (?:with|in)\b[^.]*\bpipeline\b",
        re.I)),
    ("reset", re.compile(r"\b(reset|start over|clear the pipeline)\b", re.I)),
    ("list", re.compile(r"\b(?:list|which|what) datasets\b", re.I)),
    ("describe", re.compile(r"\b(describe|explain) the pipeline\b", re.I)),
]


def _match_anchors(message: str) -> List[Tuple[int, str, re.Match]]:
    hits = []
    for intent, pattern in _ANCHORS:
        for match in pattern.finditer(message):
            hits.append((match.start(), intent, match))
    # Containment suppression: a hit strictly inside another intent's
    # longer match is a fragment of that phrase, not a request of its own
    # ("run" inside "explain the last run" must not trigger execute).
    hits = [
        hit for hit in hits
        if not any(
            other is not hit
            and other[1] != hit[1]
            and other[2].start() <= hit[2].start()
            and hit[2].end() <= other[2].end()
            and (other[2].end() - other[2].start())
            > (hit[2].end() - hit[2].start())
            for other in hits
        )
    ]
    hits.sort(key=lambda h: h[0])
    # Deduplicate overlapping same-intent hits.
    deduped: List[Tuple[int, str, re.Match]] = []
    for hit in hits:
        if deduped and deduped[-1][1] == hit[1]:
            continue
        deduped.append(hit)
    return deduped


def _clause_bounds(hits, index: int, message: str) -> str:
    start = hits[index][0]
    stop = hits[index + 1][0] if index + 1 < len(hits) else len(message)
    return message[start:stop]


_PREDICATE_LEADS = re.compile(
    r"(?:that (?:are|is)|which (?:are|is)|about|where|satisfying|related to)\s+",
    re.I,
)

# Trailing connectors that belong to the *next* request, not the predicate:
# "... about colorectal cancer, and I would like to" -> cut at the comma.
_PREDICATE_TAIL_RE = re.compile(
    r"[,;.]?\s*\b(?:and|then|also|next|afterwards)\b\s*(?:i|we|please|you)\b.*$",
    re.I | re.S,
)


def _trim_predicate(predicate: str) -> str:
    predicate = _PREDICATE_TAIL_RE.sub("", predicate)
    return predicate.strip().rstrip(".,;")


def _parse_filter(clause: str) -> Optional[str]:
    match = _PREDICATE_LEADS.search(clause)
    if match:
        predicate = clause[match.end():].strip()
        lead = match.group(0).strip().lower()
        # "that are about X" — the informative lead is the innermost one.
        inner = _PREDICATE_LEADS.match(predicate)
        while inner:
            lead = inner.group(0).strip().lower()
            predicate = predicate[inner.end():].strip()
            inner = _PREDICATE_LEADS.match(predicate)
        predicate = _trim_predicate(predicate)
        if not predicate:
            return None
        if lead.startswith(("about", "related")):
            return f"The documents are about {predicate}"
        return f"Documents that {predicate}"
    # Fallback: everything after the anchor verb.
    tail = re.sub(
        r"^\W*(filter|keep only|only keep|select only|interested in)\b\s*",
        "", clause, flags=re.I,
    ).strip().rstrip(".,;")
    return tail or None


def _parse_policy(clause: str) -> Optional[str]:
    lowered = clause.lower()
    if re.search(r"quality", lowered):
        return "quality"
    if re.search(r"cost|cheap|budget|money|dollar", lowered):
        return "cost"
    if re.search(r"time|fast|quick|latency|speed", lowered):
        return "runtime"
    return None


_SCHEMA_NAME_RE = re.compile(
    r"schema (?:called|named)\s+['\"]?(\w+)['\"]?", re.I
)
_EXTRACT_LIST_RE = re.compile(r"\bextract(?:ing)?\b\s*(.*)", re.I | re.S)

# Identifiers that are clause fragments rather than field names: verb
# tokens anywhere, or generic nouns standing alone ("dataset_name" is fine,
# a bare "dataset" is not a field).
_NON_FIELD_RE = re.compile(
    r"(?:^|_)(?:is|are|was|were|be|been|it|that)(?:_|$)"
    r"|^(?:dataset|datasets|data|information)$"
)

DEFAULT_DATASET_FIELDS = [
    ("name", "The name of the referenced dataset"),
    ("description", "A short description of the content of the dataset"),
    ("url", "The public URL where the dataset can be accessed"),
]


def _parse_extract(clause: str) -> Dict[str, Any]:
    """Derive schema name, fields, and cardinality from an extract clause."""
    lowered = clause.lower()
    one_to_many = bool(
        re.search(r"\b(any|all|every|each|whatever)\b", lowered)
        or re.search(r"\bdatasets\b", lowered)
    )
    name_match = _SCHEMA_NAME_RE.search(clause)
    schema_name = name_match.group(1) if name_match else None

    fields: List[Tuple[str, str]] = []
    list_match = _EXTRACT_LIST_RE.search(clause)
    if list_match:
        raw = list_match.group(1)
        parsed = _parse_field_list(raw)
        # Drop phrases that are not really fields ("whatever public dataset
        # is used by the study" is a clause, not a field list).
        parsed = [
            f for f in parsed
            if 0 < len(f) <= 30
            and f.count("_") <= 2
            and not _NON_FIELD_RE.search(f)
        ]
        fields = [(f, _field_description(f)) for f in parsed]

    if not fields:
        if "dataset" in lowered:
            fields = list(DEFAULT_DATASET_FIELDS)
            schema_name = schema_name or "ClinicalData"
        else:
            fields = [("value", "The extracted value")]
    if schema_name is None:
        schema_name = "Extracted" + _camel(fields[0][0])
    description = (
        f"A schema for extracting {', '.join(f for f, _ in fields)} "
        "from the documents."
    )
    return {
        "schema_name": schema_name,
        "schema_description": description,
        "fields": fields,
        "cardinality": "one_to_many" if one_to_many else "one_to_one",
    }


_RECORD_ID_RE = re.compile(r"(?:record|#)\s*#?(\d+)", re.I)
_SOURCE_TOKEN_RE = re.compile(r"\b([A-Za-z0-9][\w\-]*[._][\w.\-]*\w)\b")
_WHY_NOT_LEAD_RE = re.compile(
    r"^\W*(?:why (?:isn't|wasn't|aren't|weren't|is not|was not|didn't"
    r"|did not)|what happened to|why (?:is|was))\s*", re.I)


def _parse_record_id(clause: str) -> int:
    """'why is record 3 in the output' -> 3 (0 when unnumbered)."""
    match = _RECORD_ID_RE.search(clause)
    return int(match.group(1)) if match else 0


def _parse_source_ref(clause: str) -> str:
    """The source document a why-not question asks about.

    Prefers a quoted name, then a filename-looking token (contains
    ``_`` or ``.``), then the words after the question lead — the
    provenance graph matches sources by substring, so a loose phrase
    still finds the record.
    """
    quoted = _QUOTED_RE.search(clause)
    if quoted:
        return quoted.group(1) or quoted.group(2)
    token = _SOURCE_TOKEN_RE.search(clause)
    if token:
        return token.group(1)
    tail = _WHY_NOT_LEAD_RE.sub("", clause)
    tail = re.split(r"\bnot in the\b|\bin the\b|[?.!]", tail)[0]
    words = [w for w in re.findall(r"[\w\-]+", tail)
             if w.lower() not in _ARTICLES]
    return " ".join(words[:4])


# ---------------------------------------------------------------------------
# The planner and the brain.
# ---------------------------------------------------------------------------

def plan_requests(message: str,
                  workspace: PipelineWorkspace) -> List[ToolCall]:
    """Parse ``message`` into an ordered tool-call plan."""
    calls: List[ToolCall] = []
    hits = _match_anchors(message)

    for index, (_, intent, _match) in enumerate(hits):
        clause = _clause_bounds(hits, index, message)
        if intent == "load":
            source = _find_source(clause) or _find_source(message)
            if source:
                calls.append(ToolCall(
                    thought=f"The user wants to load data from {source!r}.",
                    tool_name="load_dataset",
                    arguments={"source": source},
                ))
            else:
                # No recognizable path or dataset id: ask instead of
                # guessing (the brain turns this into a clarification).
                calls.append(ToolCall(
                    thought="The user wants to load data but gave no "
                            "recognizable source.",
                    tool_name="list_datasets",
                    arguments={},
                ))
        elif intent == "filter":
            predicate = _parse_filter(clause)
            if predicate:
                calls.append(ToolCall(
                    thought="The user wants to keep only matching records.",
                    tool_name="filter_dataset",
                    arguments={"predicate": predicate},
                ))
        elif intent in ("extract", "schema"):
            spec = _parse_extract(clause)
            calls.append(ToolCall(
                thought=(
                    "I need an extraction schema "
                    f"{spec['schema_name']} for the requested fields."
                ),
                tool_name="create_schema",
                arguments={
                    "schema_name": spec["schema_name"],
                    "schema_description": spec["schema_description"],
                    "field_names": [f for f, _ in spec["fields"]],
                    "field_descriptions": [d for _, d in spec["fields"]],
                },
            ))
            if intent == "extract":
                calls.append(ToolCall(
                    thought=(
                        "Apply the extraction schema with a convert "
                        "operation."
                    ),
                    tool_name="convert_dataset",
                    arguments={
                        "schema_name": spec["schema_name"],
                        "cardinality": spec["cardinality"],
                    },
                ))
        elif intent == "policy":
            target = _parse_policy(clause)
            if target:
                calls.append(ToolCall(
                    thought=f"Set the optimization target to {target}.",
                    tool_name="set_optimization_target",
                    arguments={"target": target},
                ))
        elif intent == "execute":
            calls.append(ToolCall(
                thought="Run the pipeline that has been built.",
                tool_name="execute_pipeline",
                arguments={},
            ))
        elif intent == "rerun":
            calls.append(ToolCall(
                thought=(
                    "Re-run the pipeline incrementally on the updated "
                    "corpus, reusing the previous run's recorded calls."
                ),
                tool_name="rerun_pipeline",
                arguments={},
            ))
        elif intent == "explain_run":
            calls.append(ToolCall(
                thought="Explain the last run from its execution trace.",
                tool_name="explain_execution",
                arguments={},
            ))
        elif intent == "why_record":
            record_id = _parse_record_id(clause)
            calls.append(ToolCall(
                thought=(
                    "Explain how that output record was derived, from "
                    "the run's provenance graph."
                ),
                tool_name="explain_record",
                arguments={"record_id": record_id},
            ))
        elif intent == "why_not":
            source = _parse_source_ref(clause)
            calls.append(ToolCall(
                thought=(
                    f"Trace the fate of source {source!r} through the "
                    "run's provenance graph."
                ),
                tool_name="explain_record",
                arguments={"source": source},
            ))
        elif intent == "compare_runs":
            calls.append(ToolCall(
                thought="Diff the last two runs of this session.",
                tool_name="compare_runs",
                arguments={},
            ))
        elif intent == "stats":
            calls.append(ToolCall(
                thought="Report the execution statistics.",
                tool_name="get_execution_stats",
                arguments={},
            ))
        elif intent == "show":
            calls.append(ToolCall(
                thought="Show the output records.",
                tool_name="show_records",
                arguments={},
            ))
        elif intent == "code":
            calls.append(ToolCall(
                thought="Produce the equivalent Palimpzest program.",
                tool_name="generate_code",
                arguments={},
            ))
        elif intent == "workers":
            count_match = re.search(r"(\d+)\s+(?:parallel\s+)?workers?",
                                    clause, re.I)
            workers = int(count_match.group(1)) if count_match else 4
            calls.append(ToolCall(
                thought=f"Run pipelines with {workers} parallel workers.",
                tool_name="set_parallelism",
                arguments={"workers": workers},
            ))
        elif intent == "executor":
            name_match = re.search(
                r"\b(sequential|parallel|pipelined|sharded|async)\b",
                clause, re.I)
            shard_match = re.search(r"\b(\d+)\s+shards?\b", clause, re.I)
            if name_match:
                executor = name_match.group(1).lower()
            elif shard_match or re.search(r"\bshard", clause, re.I):
                executor = "sharded"
            else:
                executor = "pipelined"
            size_match = re.search(r"\bbatch(?:\s+size)?(?:\s+of)?\s+(\d+)\b",
                                   clause, re.I)
            batch_size = int(size_match.group(1)) if size_match else 1
            arguments = {"executor": executor, "batch_size": batch_size}
            if executor in ("sharded", "async") and shard_match:
                arguments["shards"] = int(shard_match.group(1))
            calls.append(ToolCall(
                thought=f"Switch pipelines to the {executor} executor.",
                tool_name="set_execution_mode",
                arguments=arguments,
            ))
        elif intent == "explain":
            calls.append(ToolCall(
                thought="Show the optimizer's plan space and choice.",
                tool_name="explain_plans",
                arguments={},
            ))
        elif intent == "lint":
            calls.append(ToolCall(
                thought="Statically check the pipeline for mistakes.",
                tool_name="lint_pipeline",
                arguments={},
            ))
        elif intent == "reset":
            calls.append(ToolCall(
                thought="Discard the current pipeline.",
                tool_name="reset_pipeline",
                arguments={},
            ))
        elif intent == "list":
            calls.append(ToolCall(
                thought="List the registered datasets.",
                tool_name="list_datasets",
                arguments={},
            ))
        elif intent == "describe":
            calls.append(ToolCall(
                thought="Describe the pipeline so far.",
                tool_name="describe_pipeline",
                arguments={},
            ))

    # Deduplicate identical consecutive calls (anchor overlap artifacts).
    deduped: List[ToolCall] = []
    for call in calls:
        if deduped and (
            deduped[-1].tool_name == call.tool_name
            and deduped[-1].arguments == call.arguments
        ):
            continue
        deduped.append(call)
    return deduped


_HELP_TEXT = (
    "I can build and run AI data pipelines for you. Try, for example:\n"
    "- 'Load the papers from ./papers'\n"
    "- 'Keep only the papers about colorectal cancer'\n"
    "- 'Extract the dataset name, description and url for any public "
    "dataset used'\n"
    "- 'Maximize quality' (or 'minimize cost' / 'minimize runtime')\n"
    "- 'Run the pipeline', then 'show the results' or "
    "'how much did it cost?'"
)


class PalimpChatBrain(Brain):
    """Deterministic reasoning policy for the PalimpChat agent.

    Args:
        workspace: the pipeline state the planned tool calls mutate.
        tracer: observability tracer; intent routing becomes a
            ``chat.intent`` span recording which tools were planned.
    """

    def __init__(self, workspace: PipelineWorkspace, tracer=None):
        self.workspace = workspace
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def decide(self, context: BrainContext) -> Decision:
        pending = context.state.get(_STATE_KEY)
        if pending is None:
            with self.tracer.span(
                "chat.intent", SpanKind.CHAT,
            ) as intent_span:
                pending = plan_requests(context.user_message, self.workspace)
                if self.tracer.enabled:
                    intent_span.set_attribute(
                        "planned_calls", len(pending)
                    )
                    intent_span.set_attribute(
                        "tools", [call.tool_name for call in pending]
                    )
            if self.workspace.on_progress is not None:
                # Surface intent routing on the progress stream so the
                # serving layer can correlate "what was planned" with
                # the request that asked for it.
                self.workspace.on_progress({
                    "type": "intent",
                    "planned_calls": len(pending),
                    "tools": [call.tool_name for call in pending],
                })
            context.state[_STATE_KEY] = pending
            if not pending:
                return FinalAnswer(
                    thought="No actionable request recognized.",
                    answer=_HELP_TEXT,
                )
        if pending:
            return pending.pop(0)

        observations = [
            step.content
            for step in context.trace.steps
            if step.kind in ("observation", "error")
        ]
        answer = "\n".join(observations) if observations else "Done."
        return FinalAnswer(
            thought="All planned steps are complete; summarize.",
            answer=answer,
        )
