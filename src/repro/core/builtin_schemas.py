"""Built-in schemas shipped with the core (mirroring ``pz``'s natives).

The demo relies on a "native PDFfile schema, which is automatically chosen to
parse the files in this dataset given their extension" (§3); the extension
dispatch table lives at the bottom of this module.
"""

from __future__ import annotations

from repro.core.fields import (
    BytesField,
    ListField,
    NumericField,
    StringField,
)
from repro.core.schemas import Schema


class File(Schema):
    """A file on disk: its name and raw contents."""

    filename = StringField(desc="The name of the file", required=True)
    contents = BytesField(desc="The raw bytes of the file")


class TextFile(File):
    """A plain-text file."""

    text_contents = StringField(desc="The full text content of the file")


class PDFFile(File):
    """A PDF document: the filename plus the extracted text layer."""

    text_contents = StringField(
        desc="The raw textual content extracted from the PDF"
    )
    page_count = NumericField(desc="Number of pages in the document")


class HTMLFile(File):
    """An HTML page, with markup stripped into plain text."""

    text_contents = StringField(desc="The visible text of the page")
    title = StringField(desc="The page title")


class CSVFile(File):
    """A CSV file parsed into a header and rows."""

    header = ListField(desc="The column names of the CSV file")
    rows = ListField(desc="The data rows of the CSV file")
    text_contents = StringField(desc="The raw CSV text")


class Email(Schema):
    """An e-mail message (used by the legal-discovery scenario)."""

    sender = StringField(desc="The e-mail address of the sender")
    recipient = StringField(desc="The e-mail address of the recipient")
    subject = StringField(desc="The subject line")
    body = StringField(desc="The full body text of the message")
    sent_date = StringField(desc="The date the message was sent")


class WebPage(Schema):
    """A fetched web page (text + URL)."""

    url = StringField(desc="The URL of the page")
    text_contents = StringField(desc="The visible text of the page")


#: File-extension -> schema dispatch used by directory data sources.
SCHEMA_BY_EXTENSION = {
    ".txt": TextFile,
    ".md": TextFile,
    ".text": TextFile,
    ".pdf": PDFFile,
    ".html": HTMLFile,
    ".htm": HTMLFile,
    ".csv": CSVFile,
    ".json": TextFile,
    ".eml": Email,
}
