"""Data sources: where records come from.

§3 of the paper: "The first step when building a pipeline is to define an
input dataset - this could either be a local folder, for which every file
will constitute an individual record; or an iterable object in memory, for
which every item will be a record.  Additionally, more experienced users can
define any custom logic to marshal arbitrary objects or paths into input
datasets."

Those three styles are :class:`DirectorySource`, :class:`MemorySource`, and
:class:`CallbackSource`.  Sources register under string ids in a
:class:`DataSourceRegistry` so pipelines can refer to them by name
(``pz.Dataset(source="sigmod-demo")``).
"""

from __future__ import annotations

import statistics
import threading
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Type

from repro.core.builtin_schemas import File, TextFile
from repro.core.errors import DatasetError
from repro.core.files import parse_file, schema_for_path
from repro.core.records import DataRecord
from repro.core.schemas import Schema, make_schema
from repro.llm.tokenizer import count_tokens


class DataSource:
    """Abstract source of :class:`DataRecord` instances."""

    def __init__(self, dataset_id: str, schema: Type[Schema]):
        if not dataset_id:
            raise DatasetError("dataset_id must be non-empty")
        self.dataset_id = dataset_id
        self.schema = schema
        self._profile_cache: Dict[int, "SourceProfile"] = {}

    def __iter__(self) -> Iterator[DataRecord]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def _cheap_len(self) -> Optional[int]:
        """``len(self)`` when it costs O(1), else ``None``.

        Sources backed by a materialized collection (directory listing,
        in-memory list, declared callback length) override this;
        iterator-only sources return ``None`` and :meth:`profile` counts
        records during its sampling pass instead of walking the stream a
        second time just for ``__len__``.
        """
        return None

    def sample(self, k: int) -> List[DataRecord]:
        """The first ``k`` records (used for sentinel optimization runs)."""
        out: List[DataRecord] = []
        for record in self:
            out.append(record)
            if len(out) >= k:
                break
        return out

    def profile(self, sample_size: int = 5,
                refresh: bool = False) -> "SourceProfile":
        """Cheap statistics for the optimizer's naive cost model.

        Cached per ``sample_size``: plan enumeration profiles the source once
        per semantic operator, and each profile re-marshals sample records
        (file IO for directory sources).  Pass ``refresh=True`` after the
        underlying data changes.
        """
        if not refresh:
            cached = self._profile_cache.get(sample_size)
            if cached is not None:
                return cached
        cardinality = self._cheap_len()
        if cardinality is None:
            # Single pass: token-count the first ``sample_size`` records and
            # keep counting (without re-marshaling work per record beyond
            # iteration) to learn the cardinality.
            token_counts: List[int] = []
            cardinality = 0
            for record in self:
                if len(token_counts) < sample_size:
                    token_counts.append(count_tokens(record.document_text()))
                cardinality += 1
        else:
            token_counts = [
                count_tokens(r.document_text())
                for r in self.sample(sample_size)
            ]
        avg = statistics.mean(token_counts) if token_counts else 0.0
        profile = SourceProfile(
            cardinality=cardinality,
            avg_document_tokens=avg,
        )
        self._profile_cache[sample_size] = profile
        return profile

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(id={self.dataset_id!r}, "
            f"schema={self.schema.schema_name()})"
        )


class SourceProfile:
    """Summary statistics a cost model needs about a source."""

    def __init__(self, cardinality: int, avg_document_tokens: float):
        self.cardinality = cardinality
        self.avg_document_tokens = avg_document_tokens

    def __repr__(self) -> str:
        return (
            f"SourceProfile(cardinality={self.cardinality}, "
            f"avg_document_tokens={self.avg_document_tokens:.0f})"
        )


class DirectorySource(DataSource):
    """Every file in a folder is one record (sorted for determinism).

    If ``schema`` is omitted, each file gets the native schema for its
    extension — this is how the demo's PDF folder automatically becomes
    ``PDFFile`` records.  ``pattern`` filters filenames with a glob.
    """

    #: Error policies for unparseable files.
    ON_ERROR_RAISE = "raise"
    ON_ERROR_SKIP = "skip"

    def __init__(
        self,
        path,
        dataset_id: Optional[str] = None,
        schema: Optional[Type[Schema]] = None,
        pattern: str = "*",
        on_error: str = "raise",
    ):
        self.path = Path(path)
        if not self.path.is_dir():
            raise DatasetError(f"{self.path} is not a directory")
        if on_error not in (self.ON_ERROR_RAISE, self.ON_ERROR_SKIP):
            raise DatasetError(
                f"on_error must be 'raise' or 'skip', got {on_error!r}"
            )
        self.pattern = pattern
        self.on_error = on_error
        self.skipped_files: List[Path] = []
        self._schema_override = schema
        files = self._list_files()
        inferred = schema or (schema_for_path(files[0]) if files else File)
        super().__init__(dataset_id or self.path.name, inferred)

    def _list_files(self) -> List[Path]:
        return sorted(
            p for p in self.path.glob(self.pattern)
            if p.is_file() and not p.name.startswith(".")
            and not p.name.endswith(".facts.json")
        )

    def __len__(self) -> int:
        return len(self._list_files())

    def _cheap_len(self) -> Optional[int]:
        # Listing the directory is cheap; parsing every file is not.
        return len(self._list_files())

    def __iter__(self) -> Iterator[DataRecord]:
        for file_path in self._list_files():
            try:
                yield parse_file(
                    file_path,
                    schema=self._schema_override,
                    source_id=self.dataset_id,
                )
            except Exception as exc:
                if self.on_error == self.ON_ERROR_RAISE:
                    raise DatasetError(
                        f"failed to parse {file_path}: {exc}"
                    ) from exc
                self.skipped_files.append(file_path)


class FileSource(DataSource):
    """A single file as a one-record dataset."""

    def __init__(self, path, dataset_id: Optional[str] = None,
                 schema: Optional[Type[Schema]] = None):
        self.path = Path(path)
        if not self.path.is_file():
            raise DatasetError(f"{self.path} is not a file")
        super().__init__(
            dataset_id or self.path.name,
            schema or schema_for_path(self.path),
        )
        self._schema_override = schema

    def __len__(self) -> int:
        return 1

    def _cheap_len(self) -> Optional[int]:
        return 1

    def __iter__(self) -> Iterator[DataRecord]:
        yield parse_file(
            self.path, schema=self._schema_override, source_id=self.dataset_id
        )


class MemorySource(DataSource):
    """An in-memory iterable: every item becomes a record.

    Items may be dicts (mapped onto ``schema`` fields), strings (mapped onto
    a ``TextFile``-like schema's text field), or ready ``DataRecord`` s.
    """

    def __init__(self, items: Iterable[Any], dataset_id: str,
                 schema: Optional[Type[Schema]] = None):
        self._items = list(items)
        if schema is None:
            schema = self._infer_schema(self._items)
        super().__init__(dataset_id, schema)

    @staticmethod
    def _infer_schema(items: List[Any]) -> Type[Schema]:
        if items and isinstance(items[0], DataRecord):
            return items[0].schema
        if items and isinstance(items[0], dict):
            return make_schema(
                "InMemoryRecord",
                "A record constructed from an in-memory dict.",
                {key: f"The {key} value" for key in items[0]},
            )
        return TextFile

    def __len__(self) -> int:
        return len(self._items)

    def _cheap_len(self) -> Optional[int]:
        return len(self._items)

    def __iter__(self) -> Iterator[DataRecord]:
        for index, item in enumerate(self._items):
            if isinstance(item, DataRecord):
                yield item
            elif isinstance(item, dict):
                yield DataRecord.from_dict(
                    self.schema, item, source_id=self.dataset_id
                )
            elif isinstance(item, str):
                record = DataRecord(self.schema, source_id=self.dataset_id)
                if "filename" in self.schema.field_map():
                    record.filename = f"{self.dataset_id}-{index}"
                if "text_contents" in self.schema.field_map():
                    record.text_contents = item
                yield record
            else:
                raise DatasetError(
                    f"cannot marshal item of type {type(item).__name__}; "
                    "provide dicts, strings, or DataRecords "
                    "(or use CallbackSource for custom logic)"
                )


class CallbackSource(DataSource):
    """Custom marshaling logic: a user callable yields the records."""

    def __init__(
        self,
        factory: Callable[[], Iterable[DataRecord]],
        dataset_id: str,
        schema: Type[Schema],
        length: Optional[int] = None,
    ):
        super().__init__(dataset_id, schema)
        self._factory = factory
        self._length = length

    def __len__(self) -> int:
        if self._length is not None:
            return self._length
        return sum(1 for _ in self._factory())

    def _cheap_len(self) -> Optional[int]:
        return self._length

    def __iter__(self) -> Iterator[DataRecord]:
        for record in self._factory():
            if not isinstance(record, DataRecord):
                raise DatasetError(
                    "CallbackSource factories must yield DataRecords, got "
                    f"{type(record).__name__}"
                )
            yield record


# -- sharding ------------------------------------------------------------

#: Assign record ``i`` to shard ``i % K`` — no profiling pass required.
SHARD_ROUND_ROBIN = "round_robin"
#: Greedy size balancing: each record goes to the currently lightest shard
#: by accumulated document tokens (lowest shard index breaks ties).
SHARD_BALANCED = "balanced"

SHARD_STRATEGIES = (SHARD_ROUND_ROBIN, SHARD_BALANCED)


def shard_assignment(
    shards: int,
    count: Optional[int] = None,
    weights: Optional[List[float]] = None,
    strategy: str = SHARD_ROUND_ROBIN,
) -> List[int]:
    """Deterministic shard index per arrival index.

    Pure function of its inputs, so the scatter performed online by the
    sharded executor and the offline :func:`shard_source` partitioning agree
    record-for-record.  ``count`` drives round-robin; per-record ``weights``
    (document token counts) drive the balanced strategy.
    """
    if shards < 1:
        raise DatasetError(f"shards must be >= 1, got {shards}")
    if strategy == SHARD_ROUND_ROBIN:
        if count is None:
            if weights is None:
                raise DatasetError("round_robin sharding needs a record count")
            count = len(weights)
        return [i % shards for i in range(count)]
    if strategy == SHARD_BALANCED:
        if weights is None:
            raise DatasetError(
                "balanced sharding needs per-record weights "
                "(document token counts)"
            )
        loads = [0.0] * shards
        assignment: List[int] = []
        for weight in weights:
            shard = min(range(shards), key=lambda s: (loads[s], s))
            loads[shard] += max(0.0, float(weight))
            assignment.append(shard)
        return assignment
    raise DatasetError(
        f"unknown shard strategy {strategy!r}; "
        f"expected one of {SHARD_STRATEGIES}"
    )


#: Serializes the shard-assignment and record-weight memos below.  Sources
#: are shared objects (registries hand the same instance to every engine),
#: so once concurrent plans shard the same source — the multi-tenant
#: server of ROADMAP item 1 — the read-compute-store sequences race.
#: Assignments are pure functions of (source, k, strategy), so the lock
#: only prevents lost updates and torn dict mutation, not wrong answers.
_SHARD_CACHE_LOCK = threading.Lock()

#: Module-level lock discipline for the memo attributes stashed on
#: sources, checked by pz-lint CC501 and the runtime sanitizer.
_GUARDED_BY = {
    "_shard_cache": "_SHARD_CACHE_LOCK",
    "_record_weight_cache": "_SHARD_CACHE_LOCK",
}


def source_record_weights(source: DataSource) -> List[int]:
    """Per-record document token counts, cached on the source.

    This is the profiling pass behind balanced sharding; it walks the source
    once and memoizes so repeated ``shard_source`` calls are free.
    """
    with _SHARD_CACHE_LOCK:
        cached = getattr(source, "_record_weight_cache", None)
    if cached is None:
        # Compute outside the lock: profiling walks the whole source, and
        # a duplicate computation by a racing thread yields the identical
        # list (weights are a pure function of the source).
        computed = [count_tokens(r.document_text()) for r in source]
        with _SHARD_CACHE_LOCK:
            cached = getattr(source, "_record_weight_cache", None)
            if cached is None:
                cached = computed
                source._record_weight_cache = cached
    return cached


class SourceShard(DataSource):
    """One deterministic shard of a parent source.

    Global record identity is preserved: the shard yields the parent's own
    records (same fingerprints, same source ids) and remembers each record's
    global arrival index so a gather stage can restore the original order.
    """

    def __init__(self, parent: DataSource, shard_index: int,
                 assignment: List[int], strategy: str):
        if shard_index < 0:
            raise DatasetError(f"shard_index must be >= 0, got {shard_index}")
        super().__init__(
            f"{parent.dataset_id}#shard{shard_index}", parent.schema
        )
        self.parent = parent
        self.shard_index = shard_index
        self.strategy = strategy
        self._assignment = assignment

    @property
    def global_indices(self) -> List[int]:
        """Arrival indices (in the parent) of this shard's records."""
        return [
            i for i, shard in enumerate(self._assignment)
            if shard == self.shard_index
        ]

    def __len__(self) -> int:
        return len(self.global_indices)

    def _cheap_len(self) -> Optional[int]:
        return len(self.global_indices)

    def __iter__(self) -> Iterator[DataRecord]:
        for index, record in enumerate(self.parent):
            if (index < len(self._assignment)
                    and self._assignment[index] == self.shard_index):
                yield record


def shard_source(
    source: DataSource,
    shards: int,
    strategy: str = SHARD_ROUND_ROBIN,
) -> List[SourceShard]:
    """Partition ``source`` into ``shards`` deterministic shards.

    The assignment is cached on the source per ``(shards, strategy)`` so
    repeated partitioning (optimizer estimates, then execution) reuses it.
    """
    key = (shards, strategy)
    with _SHARD_CACHE_LOCK:
        cache: Optional[Dict[Any, List[int]]] = getattr(
            source, "_shard_cache", None
        )
        assignment = cache.get(key) if cache else None
    if assignment is None:
        # Compute outside the lock (balanced sharding profiles the whole
        # source); racing threads compute the same assignment, and the
        # store below keeps whichever landed first.
        if strategy == SHARD_BALANCED:
            weights = source_record_weights(source)
            assignment = shard_assignment(
                shards, weights=weights, strategy=strategy
            )
        else:
            count = source._cheap_len()
            if count is None:
                count = len(source)
            assignment = shard_assignment(shards, count=count,
                                          strategy=strategy)
        with _SHARD_CACHE_LOCK:
            cache = getattr(source, "_shard_cache", None)
            if cache is None:
                cache = {}
                source._shard_cache = cache
            assignment = cache.setdefault(key, assignment)
    return [
        SourceShard(source, k, assignment, strategy) for k in range(shards)
    ]


class DataSourceRegistry:
    """Named registry of data sources (the system's "data directory")."""

    def __init__(self):
        self._sources: Dict[str, DataSource] = {}

    def register(self, source: DataSource, overwrite: bool = False) -> None:
        if source.dataset_id in self._sources and not overwrite:
            raise DatasetError(
                f"dataset id {source.dataset_id!r} is already registered"
            )
        self._sources[source.dataset_id] = source

    def get(self, dataset_id: str) -> DataSource:
        try:
            return self._sources[dataset_id]
        except KeyError:
            known = ", ".join(sorted(self._sources)) or "<none>"
            raise DatasetError(
                f"unknown dataset {dataset_id!r}; registered: {known}"
            ) from None

    def __contains__(self, dataset_id: str) -> bool:
        return dataset_id in self._sources

    def list_ids(self) -> List[str]:
        return sorted(self._sources)

    def unregister(self, dataset_id: str) -> None:
        self._sources.pop(dataset_id, None)

    def clear(self) -> None:
        self._sources.clear()


_global_registry = DataSourceRegistry()


def global_source_registry() -> DataSourceRegistry:
    """The process-global data source registry."""
    return _global_registry


def register_datasource(source: DataSource, overwrite: bool = True) -> DataSource:
    """Register ``source`` globally and return it (fluent helper)."""
    _global_registry.register(source, overwrite=overwrite)
    return source
