"""Data records: schema-shaped values flowing through a plan.

A :class:`DataRecord` binds values to a schema's fields and remembers its
lineage (the parent record it was derived from), which execution statistics
and quality metrics use to trace outputs back to source documents.
"""

from __future__ import annotations

import itertools
import json
from typing import Any, Dict, Iterable, List, Optional, Type

from repro.core.errors import SchemaError
from repro.core.schemas import Schema
from repro.llm.oracle import fingerprint_text

_record_counter = itertools.count(1)

#: Field names that carry the "document text" of a record, in preference
#: order.  Semantic operators feed this text to the (simulated) models.
_DOCUMENT_FIELDS = ("text_contents", "body", "contents", "description", "text")


class DataRecord:
    """One record of a dataset, conforming to ``schema``.

    Values are held in an internal dict; attribute access is proxied so
    ``record.filename`` works for any schema field.  Unknown attribute writes
    raise, which catches typos in UDFs early.
    """

    def __init__(
        self,
        schema: Type[Schema],
        source_id: Optional[str] = None,
        parent: Optional["DataRecord"] = None,
        extra_parents: Iterable["DataRecord"] = (),
    ):
        object.__setattr__(self, "_schema", schema)
        object.__setattr__(self, "_values", {})
        object.__setattr__(self, "_source_id", source_id)
        object.__setattr__(self, "_parent", parent)
        object.__setattr__(self, "_extra_parents", tuple(extra_parents))
        object.__setattr__(self, "_record_id", next(_record_counter))
        object.__setattr__(self, "_doc_text_cache", None)

    # -- construction helpers -------------------------------------------

    @classmethod
    def from_dict(
        cls,
        schema: Type[Schema],
        values: Dict[str, Any],
        source_id: Optional[str] = None,
        parent: Optional["DataRecord"] = None,
    ) -> "DataRecord":
        record = cls(schema, source_id=source_id, parent=parent)
        for name, value in values.items():
            if name in schema.field_map():
                setattr(record, name, value)
        return record

    def derive(
        self,
        schema: Type[Schema],
        values: Optional[Dict[str, Any]] = None,
        extra_parents: Iterable["DataRecord"] = (),
    ) -> "DataRecord":
        """Create a child record of ``schema``, copying shared fields.

        Fields present in both schemas carry over; ``values`` overrides or
        adds the newly computed fields (the convert semantics of §2.1).
        ``extra_parents`` records additional lineage for N:1 derivations —
        a join's right-side record, an aggregate's folded inputs.
        """
        child = DataRecord(schema, source_id=self._source_id, parent=self,
                           extra_parents=extra_parents)
        for name in schema.field_map():
            if name in self._values:
                child._values[name] = self._values[name]
        for name, value in (values or {}).items():
            if name in schema.field_map():
                field = schema.field_map()[name]
                child._values[name] = field.coerce(value)
        return child

    # -- attribute proxying ----------------------------------------------

    def __getattr__(self, name: str) -> Any:
        if name.startswith("_"):
            raise AttributeError(name)
        schema = object.__getattribute__(self, "_schema")
        values = object.__getattribute__(self, "_values")
        if name in schema.field_map():
            return values.get(name)
        raise AttributeError(
            f"record of schema {schema.schema_name()} has no field {name!r}"
        )

    def __setattr__(self, name: str, value: Any) -> None:
        if name.startswith("_"):
            object.__setattr__(self, name, value)
            return
        if name not in self._schema.field_map():
            raise SchemaError(
                f"cannot set unknown field {name!r} on schema "
                f"{self._schema.schema_name()}; fields: "
                f"{self._schema.field_names()}"
            )
        field = self._schema.field_map()[name]
        self._values[name] = field.coerce(value)
        object.__setattr__(self, "_doc_text_cache", None)

    # -- accessors ---------------------------------------------------------

    @property
    def schema(self) -> Type[Schema]:
        return self._schema

    @property
    def source_id(self) -> Optional[str]:
        return self._source_id

    @property
    def parent(self) -> Optional["DataRecord"]:
        return self._parent

    @property
    def parents(self) -> "List[DataRecord]":
        """All direct parents: the primary parent first, extras after.

        Most derivations are 1:1 chains (``parents == [parent]``); join
        merges and aggregate folds carry the additional inputs here.
        """
        out: List[DataRecord] = []
        if self._parent is not None:
            out.append(self._parent)
        out.extend(self._extra_parents)
        return out

    @property
    def record_id(self) -> int:
        return self._record_id

    def get(self, name: str, default: Any = None) -> Any:
        return self._values.get(name, default)

    def to_dict(self, include_bytes: bool = False) -> Dict[str, Any]:
        out = {}
        for name in self._schema.field_names():
            value = self._values.get(name)
            if isinstance(value, bytes) and not include_bytes:
                value = f"<{len(value)} bytes>"
            out[name] = value
        return out

    def document_text(self) -> str:
        """The textual payload semantic operators should reason over.

        Prefers the conventional document fields; falls back to joining all
        string-valued fields.  Lineage fallback: a record whose own schema has
        no text (e.g. after projection) inherits its parent's document text.

        The result is cached per record (invalidated on field writes) because
        every semantic call re-derives it.  The lineage fallback delegates to
        the parent rather than caching here, so a later parent mutation is
        still observed.
        """
        cached = self._doc_text_cache
        if cached is not None:
            return cached
        text = None
        for name in _DOCUMENT_FIELDS:
            value = self._values.get(name)
            if isinstance(value, str) and value:
                text = value
                break
        if text is None:
            strings = [
                v for v in self._values.values() if isinstance(v, str) and v
            ]
            if strings:
                text = "\n".join(strings)
        if text is not None:
            object.__setattr__(self, "_doc_text_cache", text)
            return text
        if self._parent is not None:
            return self._parent.document_text()
        return ""

    def fields_text(self, names: Iterable[str]) -> str:
        """The textual payload restricted to the named fields.

        Used by semantic operators declared with ``depends_on=[...]``: the
        model sees only the relevant columns ("Field: value" lines), which
        shrinks prompts.  Falls back to :meth:`document_text` when none of
        the named fields hold text.
        """
        lines = []
        for name in names:
            value = self._values.get(name)
            if value is None and self._parent is not None:
                value = self._parent.get(name)
            if value is not None and not isinstance(value, bytes):
                lines.append(f"{name}: {value}")
        return "\n".join(lines) if lines else self.document_text()

    def root(self) -> "DataRecord":
        """The furthest ancestor (the source document this derives from)."""
        node = self
        while node._parent is not None:
            node = node._parent
        return node

    def lineage(self) -> List["DataRecord"]:
        """Every ancestor plus this record, as a deduplicated DAG walk.

        Ordering guarantee: **parents before children**, discovered
        depth-first with the primary parent's subtree before any
        ``extra_parents`` subtrees (left-to-right), each record exactly
        once at its first encounter, and this record last.  For plain
        1:1 chains that reduces to the historical source-first chain;
        for N:1 derivations (aggregates, joins) shared ancestors appear
        a single time instead of once per path.
        """
        ordered: List[DataRecord] = []
        seen = set()

        def visit(node: "DataRecord") -> None:
            if id(node) in seen:
                return
            seen.add(id(node))
            for parent in node.parents:
                visit(parent)
            ordered.append(node)

        visit(self)
        return ordered

    @property
    def fingerprint(self) -> str:
        """Oracle fingerprint of this record's document text."""
        return fingerprint_text(self.document_text())

    def missing_required(self) -> List[str]:
        """Names of required fields that are unset or None."""
        return [
            name
            for name, field in self._schema.field_map().items()
            if field.required and self._values.get(name) is None
        ]

    # -- dunder -----------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, DataRecord)
            and self._schema is other._schema
            and self._values == other._values
        )

    def __hash__(self) -> int:
        return hash((self._schema.schema_name(), self._record_id))

    def __repr__(self) -> str:
        preview = {}
        for name, value in list(self._values.items())[:4]:
            text = repr(value)
            preview[name] = text if len(text) <= 40 else text[:37] + "..."
        return (
            f"DataRecord({self._schema.schema_name()}, "
            + ", ".join(f"{k}={v}" for k, v in preview.items())
            + ")"
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), default=str, sort_keys=True)
