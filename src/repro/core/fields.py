"""Schema field types.

A :class:`Field` carries the metadata the paper's §2.1 describes: a name
(bound by the schema metaclass), a natural-language description (which the
LLM-backed convert operators feed into their extraction prompts), and a
Python type used for validation/coercion of extracted values.
"""

from __future__ import annotations

from typing import Any, Optional, Type


class Field:
    """A named, described attribute of a :class:`~repro.core.schemas.Schema`.

    Args:
        desc: Natural-language description, shown to extraction models.
        required: Whether conversion should treat a missing value as an error
            (required fields that come back ``None`` lower measured quality
            but never raise — mirroring how LLM pipelines degrade).
    """

    python_type: type = object
    type_name: str = "any"

    def __init__(self, desc: str = "", required: bool = False):
        self.desc = desc
        self.required = required
        self.name: Optional[str] = None  # bound by SchemaMeta

    def __set_name__(self, owner, name):
        self.name = name

    def coerce(self, value: Any) -> Any:
        """Coerce an extracted value to this field's type.

        Returns ``None`` unchanged; raises nothing — extraction output is
        best-effort, so uncoercible values pass through as-is and quality
        metrics penalize them downstream.
        """
        return value

    def validate(self, value: Any) -> bool:
        """Whether ``value`` is acceptable for this field."""
        if value is None:
            return not self.required
        return isinstance(value, self.python_type) or self.python_type is object

    def spec(self) -> dict:
        return {
            "name": self.name,
            "type": self.type_name,
            "desc": self.desc,
            "required": self.required,
        }

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name={self.name!r}, desc={self.desc!r}, "
            f"required={self.required})"
        )

    def __eq__(self, other) -> bool:
        return (
            type(self) is type(other)
            and self.name == other.name
            and self.desc == other.desc
            and self.required == other.required
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.name, self.desc, self.required))


class StringField(Field):
    python_type = str
    type_name = "string"

    def coerce(self, value: Any) -> Any:
        if value is None or isinstance(value, str):
            return value
        return str(value)


class NumericField(Field):
    python_type = float
    type_name = "number"

    def coerce(self, value: Any) -> Any:
        if value is None or isinstance(value, (int, float)):
            return value
        if isinstance(value, str):
            cleaned = value.replace(",", "").replace("$", "").strip()
            try:
                return float(cleaned) if "." in cleaned else int(cleaned)
            except ValueError:
                return value
        return value

    def validate(self, value: Any) -> bool:
        if value is None:
            return not self.required
        return isinstance(value, (int, float)) and not isinstance(value, bool)


class BooleanField(Field):
    python_type = bool
    type_name = "boolean"

    _TRUE = frozenset({"true", "yes", "1", "t", "y"})
    _FALSE = frozenset({"false", "no", "0", "f", "n"})

    def coerce(self, value: Any) -> Any:
        if value is None or isinstance(value, bool):
            return value
        if isinstance(value, str):
            low = value.strip().lower()
            if low in self._TRUE:
                return True
            if low in self._FALSE:
                return False
        return value


class BytesField(Field):
    python_type = bytes
    type_name = "bytes"


class ListField(Field):
    """A list of values, optionally typed by ``element_type``."""

    python_type = list
    type_name = "list"

    def __init__(self, element_type: Optional[Type[Field]] = None,
                 desc: str = "", required: bool = False):
        super().__init__(desc=desc, required=required)
        self.element_field = element_type() if element_type else None

    def coerce(self, value: Any) -> Any:
        if value is None:
            return None
        if not isinstance(value, list):
            value = [value]
        if self.element_field is None:
            return value
        return [self.element_field.coerce(v) for v in value]

    def __eq__(self, other) -> bool:
        if not super().__eq__(other):
            return False
        mine = type(self.element_field).__name__ if self.element_field else None
        theirs = type(other.element_field).__name__ if other.element_field else None
        return mine == theirs

    def __hash__(self) -> int:
        element = type(self.element_field).__name__ if self.element_field else None
        return hash((super().__hash__(), element))


class UrlField(StringField):
    type_name = "url"

    def validate(self, value: Any) -> bool:
        if value is None:
            return not self.required
        return isinstance(value, str) and value.startswith(("http://", "https://"))
