"""The Schema system.

A schema is "the attribute names, types, and descriptions used to process the
dataset" (§2.1).  Schemas are Python classes whose class attributes are
:class:`~repro.core.fields.Field` instances; a metaclass collects them (in
definition order, inheriting parent fields) into ``__fields__``.

Two creation styles are supported, matching the paper:

* declarative subclassing, used by library programmers::

      class Author(Schema):
          \"\"\"Author information extracted from a paper.\"\"\"
          name = StringField(desc="The author's full name")
          email = StringField(desc="The author's e-mail address")

* the dynamic ``type(...)`` construction that PalimpChat's ``create_schema``
  tool performs (Fig. 2), wrapped here as :func:`make_schema`.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence, Type, Union

from repro.core.errors import SchemaError
from repro.core.fields import Field, StringField


class SchemaMeta(type):
    """Collects Field attributes into ``__fields__`` (ordered, inherited)."""

    def __new__(mcls, name, bases, namespace):
        cls = super().__new__(mcls, name, bases, namespace)
        fields: Dict[str, Field] = {}
        for base in reversed(cls.__mro__[1:]):
            fields.update(getattr(base, "__fields__", {}))
        for attr_name, attr_value in namespace.items():
            if isinstance(attr_value, Field):
                if attr_name.startswith("__"):
                    raise SchemaError(
                        f"field name {attr_name!r} may not be dunder-named"
                    )
                fields[attr_name] = attr_value
        cls.__fields__ = fields
        return cls


class Schema(metaclass=SchemaMeta):
    """Base class for all schemas.

    The class docstring is the schema description (fed to extraction
    prompts); subclasses add fields.  Schemas are never instantiated —
    records carrying schema-shaped values are :class:`~repro.core.records.DataRecord`.
    """

    __fields__: Dict[str, Field] = {}

    def __init__(self):
        raise TypeError(
            "schemas are not instantiated; create DataRecords instead"
        )

    # -- class-level introspection -------------------------------------

    @classmethod
    def schema_name(cls) -> str:
        return cls.__name__

    @classmethod
    def schema_description(cls) -> str:
        """The class docstring (named to avoid colliding with a
        user-defined ``description`` field, as in the paper's ClinicalData)."""
        return (cls.__doc__ or "").strip()

    @classmethod
    def field_names(cls) -> List[str]:
        return list(cls.__fields__.keys())

    @classmethod
    def field_map(cls) -> Dict[str, Field]:
        return dict(cls.__fields__)

    @classmethod
    def field_desc(cls, name: str) -> str:
        try:
            return cls.__fields__[name].desc
        except KeyError:
            raise SchemaError(
                f"schema {cls.__name__} has no field {name!r}; "
                f"fields: {cls.field_names()}"
            ) from None

    @classmethod
    def field_descriptions(cls) -> Dict[str, str]:
        """name -> description, the payload of an extraction prompt."""
        return {name: f.desc for name, f in cls.__fields__.items()}

    @classmethod
    def text_field_names(cls) -> List[str]:
        return [
            name
            for name, f in cls.__fields__.items()
            if isinstance(f, StringField)
        ]

    @classmethod
    def new_fields_vs(cls, other: Type["Schema"]) -> List[str]:
        """Fields of ``cls`` that do not already exist in ``other``.

        These are the fields a convert operator must *compute* (§2.1:
        "computing the fields in B that do not explicitly exist in A").
        """
        existing = set(other.__fields__)
        return [name for name in cls.__fields__ if name not in existing]

    @classmethod
    def json_schema(cls) -> dict:
        return {
            "title": cls.schema_name(),
            "description": cls.schema_description(),
            "type": "object",
            "properties": {
                name: {"type": f.type_name, "description": f.desc}
                for name, f in cls.__fields__.items()
            },
            "required": [
                name for name, f in cls.__fields__.items() if f.required
            ],
        }


def schema_signature(schema: Type[Schema]) -> str:
    """A stable identity for a schema: name + field specs.

    Dynamically created schemas with identical shape get identical
    signatures, which the optimizer uses for plan caching.
    """
    parts = [schema.schema_name()]
    for name, f in sorted(schema.field_map().items()):
        parts.append(f"{name}:{f.type_name}:{f.desc}:{f.required}")
    digest = hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()[:16]
    return f"{schema.schema_name()}#{digest}"


def _check_field_name(name: str) -> None:
    if not name.isidentifier():
        raise SchemaError(
            f"field name {name!r} must be a valid Python identifier "
            "(no spaces or special characters)"
        )
    if name.startswith("_"):
        raise SchemaError(f"field name {name!r} may not start with underscore")


def make_schema(
    name: str,
    description: str,
    fields: Union[Dict[str, Union[str, Field]], Sequence[str]],
    field_descriptions: Optional[Sequence[str]] = None,
    base: Type[Schema] = Schema,
) -> Type[Schema]:
    """Dynamically create a schema class (the Fig. 2 ``create_schema`` path).

    ``fields`` may be a mapping of field name to description (strings become
    :class:`StringField`) or to a ready :class:`Field`; or a sequence of
    names paired with ``field_descriptions``.

    >>> Author = make_schema("Author", "Paper author", {"name": "Full name"})
    >>> Author.field_names()
    ['name']
    """
    if not name.isidentifier():
        raise SchemaError(f"schema name {name!r} must be a valid identifier")

    if not isinstance(fields, dict):
        names = list(fields)
        descs = list(field_descriptions or [])
        if len(descs) != len(names):
            raise SchemaError(
                f"got {len(names)} field names but "
                f"{len(descs)} field descriptions"
            )
        fields = dict(zip(names, descs))
    if not fields:
        raise SchemaError("a schema needs at least one field")

    namespace: dict = {"__doc__": description}
    for field_name, spec in fields.items():
        _check_field_name(field_name)
        if isinstance(spec, Field):
            namespace[field_name] = spec
        elif isinstance(spec, str):
            namespace[field_name] = StringField(desc=spec)
        else:
            raise SchemaError(
                f"field {field_name!r}: expected a description string or a "
                f"Field, got {type(spec).__name__}"
            )
    return SchemaMeta(name, (base,), namespace)
