"""Logical operators and logical plans.

"A Palimpzest plan is a sequence of these operators over a dataset.  By
design, users write *logical* plans only; the choice of the physical
implementation is deferred until runtime." (§2.1)

The logical operators here cover the paper's two emphasized semantic
operators (*Filter* with a natural-language predicate or UDF, and *Convert*
between schemas with one-to-one / one-to-many cardinality) plus the
conventional relational operators (projection, aggregation, group-by, limit)
and semantic top-k retrieval.
"""

from __future__ import annotations

import enum
import hashlib
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Type

from repro.core.cardinality import Cardinality
from repro.core.errors import PlanError, SchemaError
from repro.core.fields import NumericField, StringField
from repro.core.schemas import Schema, make_schema, schema_signature


class FilterSpec:
    """A filter predicate: either natural language or a Python UDF."""

    def __init__(
        self,
        predicate: Optional[str] = None,
        udf: Optional[Callable[..., bool]] = None,
        depends_on: Optional[Sequence[str]] = None,
    ):
        if (predicate is None) == (udf is None):
            raise PlanError(
                "a filter needs exactly one of a natural-language predicate "
                "or a UDF"
            )
        if predicate is not None and not predicate.strip():
            raise PlanError("filter predicate must be non-empty")
        self.predicate = predicate
        self.udf = udf
        self.depends_on = list(depends_on or [])

    @property
    def is_semantic(self) -> bool:
        return self.predicate is not None

    def describe(self) -> str:
        if self.is_semantic:
            return f'filter("{self.predicate}")'
        return f"filter(udf={getattr(self.udf, '__name__', 'lambda')})"

    def signature(self) -> str:
        if self.is_semantic:
            return f"nl:{self.predicate}"
        return f"udf:{getattr(self.udf, '__name__', repr(self.udf))}"


class AggFunc(enum.Enum):
    COUNT = "count"
    AVERAGE = "average"
    SUM = "sum"
    MIN = "min"
    MAX = "max"

    @classmethod
    def parse(cls, value) -> "AggFunc":
        if isinstance(value, cls):
            return value
        needle = str(value).strip().lower()
        for member in cls:
            if needle in (member.value, member.name.lower()):
                return member
        if needle in ("avg", "mean"):
            return cls.AVERAGE
        raise PlanError(f"unknown aggregate function {value!r}")


class LogicalOperator:
    """Base class: a node in a (linear) logical plan."""

    def __init__(self, input_schema: Optional[Type[Schema]],
                 output_schema: Type[Schema]):
        self.input_schema = input_schema
        self.output_schema = output_schema

    @property
    def op_name(self) -> str:
        return type(self).__name__

    def describe(self) -> str:
        return self.op_name

    def signature(self) -> str:
        """Stable identity used for plan caching and sentinel stats."""
        material = f"{self.op_name}|{self.describe()}|" + schema_signature(
            self.output_schema
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()[:12]

    def __repr__(self) -> str:
        return f"<{self.describe()}>"


class BaseScan(LogicalOperator):
    """Read all records from a registered data source."""

    def __init__(self, dataset_id: str, schema: Type[Schema]):
        super().__init__(None, schema)
        self.dataset_id = dataset_id

    def describe(self) -> str:
        return f"scan({self.dataset_id!r} -> {self.output_schema.schema_name()})"


class FilteredScan(LogicalOperator):
    """Keep the records satisfying a :class:`FilterSpec`."""

    def __init__(self, input_schema: Type[Schema], spec: FilterSpec):
        super().__init__(input_schema, input_schema)
        self.spec = spec

    def describe(self) -> str:
        return self.spec.describe()


class ConvertScan(LogicalOperator):
    """Transform records of schema A into schema B (§2.1's *Convert*).

    New fields of B are *computed* (by an LLM or a UDF); fields shared with A
    are carried over.  ``cardinality`` may be one-to-many, in which case one
    input record can yield several outputs (Fig. 6's ``ONE_TO_MANY``).
    """

    def __init__(
        self,
        input_schema: Type[Schema],
        output_schema: Type[Schema],
        cardinality: Cardinality = Cardinality.ONE_TO_ONE,
        desc: str = "",
        udf: Optional[Callable[..., Any]] = None,
        depends_on: Optional[Sequence[str]] = None,
    ):
        super().__init__(input_schema, output_schema)
        self.cardinality = Cardinality.parse(cardinality)
        self.desc = desc or output_schema.schema_description()
        self.udf = udf
        self.depends_on = list(depends_on or [])
        self.new_fields = output_schema.new_fields_vs(input_schema)
        if not self.new_fields and udf is None:
            raise PlanError(
                f"convert to {output_schema.schema_name()} computes no new "
                "fields; every output field already exists on "
                f"{input_schema.schema_name()}"
            )

    @property
    def is_semantic(self) -> bool:
        return self.udf is None

    def describe(self) -> str:
        kind = "udf" if self.udf else "llm"
        return (
            f"convert({self.input_schema.schema_name()} -> "
            f"{self.output_schema.schema_name()}, {self.cardinality.value}, "
            f"{kind})"
        )


class Project(LogicalOperator):
    """Keep only the named fields."""

    def __init__(self, input_schema: Type[Schema], fields: Sequence[str]):
        missing = [f for f in fields if f not in input_schema.field_map()]
        if missing:
            raise SchemaError(
                f"cannot project unknown fields {missing} of schema "
                f"{input_schema.schema_name()}"
            )
        if not fields:
            raise PlanError("projection needs at least one field")
        output = make_schema(
            f"{input_schema.schema_name()}Projection",
            f"Projection of {input_schema.schema_name()} onto {list(fields)}",
            {name: input_schema.field_map()[name] for name in fields},
        )
        super().__init__(input_schema, output)
        self.fields = list(fields)

    def describe(self) -> str:
        return f"project({self.fields})"


class LimitScan(LogicalOperator):
    """Pass through at most ``limit`` records."""

    def __init__(self, input_schema: Type[Schema], limit: int):
        if limit < 0:
            raise PlanError(f"limit must be non-negative, got {limit}")
        super().__init__(input_schema, input_schema)
        self.limit = limit

    def describe(self) -> str:
        return f"limit({self.limit})"


def _aggregate_output_schema(alias: str) -> Type[Schema]:
    return make_schema(
        "AggregateResult",
        "The scalar result of an aggregation.",
        {alias: NumericField(desc=f"The {alias} value")},
    )


class Aggregate(LogicalOperator):
    """A whole-dataset scalar aggregate (count / average / sum / min / max)."""

    def __init__(self, input_schema: Type[Schema], func: AggFunc,
                 field: Optional[str] = None):
        func = AggFunc.parse(func)
        if func is not AggFunc.COUNT:
            if field is None:
                raise PlanError(f"{func.value} aggregate needs a field")
            if field not in input_schema.field_map():
                raise SchemaError(
                    f"aggregate field {field!r} not in schema "
                    f"{input_schema.schema_name()}"
                )
        alias = func.value if field is None else f"{func.value}_{field}"
        super().__init__(input_schema, _aggregate_output_schema(alias))
        self.func = func
        self.field = field
        self.alias = alias

    def describe(self) -> str:
        return f"aggregate({self.func.value}, field={self.field})"


class GroupByAggregate(LogicalOperator):
    """SQL-style GROUP BY with one or more aggregates per group."""

    def __init__(
        self,
        input_schema: Type[Schema],
        group_fields: Sequence[str],
        aggregates: Sequence[Tuple[AggFunc, Optional[str]]],
    ):
        if not group_fields:
            raise PlanError("group-by needs at least one grouping field")
        for field in group_fields:
            if field not in input_schema.field_map():
                raise SchemaError(
                    f"group field {field!r} not in schema "
                    f"{input_schema.schema_name()}"
                )
        parsed = []
        fields: Dict[str, Any] = {
            name: StringField(desc=f"Group key {name}") for name in group_fields
        }
        for func, agg_field in aggregates:
            func = AggFunc.parse(func)
            if func is not AggFunc.COUNT and (
                agg_field is None or agg_field not in input_schema.field_map()
            ):
                raise SchemaError(
                    f"aggregate field {agg_field!r} not in schema "
                    f"{input_schema.schema_name()}"
                )
            alias = (
                func.value if agg_field is None else f"{func.value}_{agg_field}"
            )
            fields[alias] = NumericField(desc=f"The {alias} per group")
            parsed.append((func, agg_field, alias))
        output = make_schema(
            "GroupByResult", "One row per group with aggregate values.", fields
        )
        super().__init__(input_schema, output)
        self.group_fields = list(group_fields)
        self.aggregates = parsed

    def describe(self) -> str:
        aggs = [f"{func.value}({field})" for func, field, _ in self.aggregates]
        return f"groupby({self.group_fields}, {aggs})"


class RetrieveScan(LogicalOperator):
    """Semantic top-k: the ``k`` records most similar to ``query``."""

    def __init__(self, input_schema: Type[Schema], query: str, k: int):
        if not query.strip():
            raise PlanError("retrieve query must be non-empty")
        if k <= 0:
            raise PlanError(f"retrieve k must be positive, got {k}")
        super().__init__(input_schema, input_schema)
        self.query = query
        self.k = k

    def describe(self) -> str:
        return f"retrieve({self.query!r}, k={self.k})"


class LogicalPlan:
    """An ordered operator chain, scan first."""

    def __init__(self, operators: Sequence[LogicalOperator]):
        ops = list(operators)
        if not ops:
            raise PlanError("a logical plan needs at least one operator")
        if not isinstance(ops[0], BaseScan):
            raise PlanError("a logical plan must start with a BaseScan")
        for upstream, downstream in zip(ops, ops[1:]):
            if isinstance(downstream, BaseScan):
                raise PlanError("BaseScan may only appear first in a plan")
            if downstream.input_schema is not upstream.output_schema:
                raise PlanError(
                    f"schema mismatch between {upstream.describe()} "
                    f"(produces {upstream.output_schema.schema_name()}) and "
                    f"{downstream.describe()} (expects "
                    f"{downstream.input_schema.schema_name()})"
                )
        self.operators = ops

    @property
    def scan(self) -> BaseScan:
        return self.operators[0]  # type: ignore[return-value]

    @property
    def output_schema(self) -> Type[Schema]:
        return self.operators[-1].output_schema

    def semantic_operators(self) -> List[LogicalOperator]:
        """The operators whose physical implementation involves a model."""
        semantic: List[LogicalOperator] = []
        for op in self.operators:
            if isinstance(op, FilteredScan) and op.spec.is_semantic:
                semantic.append(op)
            elif isinstance(op, ConvertScan) and op.is_semantic:
                semantic.append(op)
            elif isinstance(op, RetrieveScan):
                semantic.append(op)
            elif getattr(op, "is_semantic", False):
                # Extended operators (e.g. semantic joins) opt in via an
                # is_semantic attribute.
                semantic.append(op)
        return semantic

    def describe(self) -> str:
        return " -> ".join(op.describe() for op in self.operators)

    def __len__(self) -> int:
        return len(self.operators)

    def __iter__(self):
        return iter(self.operators)

    def __repr__(self) -> str:
        return f"LogicalPlan({self.describe()})"
