"""Extended relational logical operators: join, union, distinct, sort.

The paper notes Palimpzest "implements most relational algebra operators";
beyond the core set in :mod:`repro.core.logical` this module adds:

* :class:`JoinScan` — join the stream against a second dataset, with either
  a Python predicate over record pairs or a natural-language predicate
  judged by a model (a *semantic join*).
* :class:`UnionScan` — concatenate a second dataset of the same schema.
* :class:`Distinct` — drop duplicate records (all fields or a subset).
* :class:`Sort` — order records by a field.

Joins/unions keep plans *structurally linear*: the right-hand side is a
whole :class:`~repro.core.dataset.Dataset` owned by the operator, optimized
and materialized by the physical operator when it opens.  That keeps the
single-pipeline executor and optimizer intact while still composing
arbitrary sub-pipelines.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Type

from repro.core.errors import PlanError, SchemaError
from repro.core.fields import Field
from repro.core.logical import LogicalOperator
from repro.core.schemas import Schema, make_schema


def joined_schema(left: Type[Schema], right: Type[Schema]) -> Type[Schema]:
    """Merged output schema of a join; right-side name clashes get
    a ``right_`` prefix."""
    fields: Dict[str, Field] = {}
    for name, field in left.field_map().items():
        fields[name] = field
    for name, field in right.field_map().items():
        target = name if name not in fields else f"right_{name}"
        if target in fields:
            raise SchemaError(
                f"cannot merge schemas: field {target!r} exists on both "
                "sides even after prefixing"
            )
        fields[target] = field
    return make_schema(
        f"{left.schema_name()}Join{right.schema_name()}",
        f"Join of {left.schema_name()} and {right.schema_name()}.",
        fields,
    )


class JoinScan(LogicalOperator):
    """Join the stream with ``right_dataset``.

    Exactly one of ``predicate`` (natural language, judged per pair by a
    model) or ``udf`` (``fn(left_record, right_record) -> bool``) must be
    given.
    """

    def __init__(
        self,
        input_schema: Type[Schema],
        right_dataset,
        predicate: Optional[str] = None,
        udf: Optional[Callable] = None,
    ):
        if (predicate is None) == (udf is None):
            raise PlanError(
                "a join needs exactly one of a natural-language predicate "
                "or a UDF"
            )
        if predicate is not None and not predicate.strip():
            raise PlanError("join predicate must be non-empty")
        output = joined_schema(input_schema, right_dataset.schema)
        super().__init__(input_schema, output)
        self.right_dataset = right_dataset
        self.predicate = predicate
        self.udf = udf

    @property
    def is_semantic(self) -> bool:
        return self.predicate is not None

    def describe(self) -> str:
        condition = (
            f'"{self.predicate}"' if self.is_semantic
            else getattr(self.udf, "__name__", "udf")
        )
        return (
            f"join({self.right_dataset.schema.schema_name()}, {condition})"
        )


class UnionScan(LogicalOperator):
    """Concatenate ``right_dataset`` (same schema) after the stream."""

    def __init__(self, input_schema: Type[Schema], right_dataset):
        right_schema = right_dataset.schema
        if set(right_schema.field_map()) != set(input_schema.field_map()):
            raise SchemaError(
                "union requires matching schemas; "
                f"{input_schema.schema_name()} has "
                f"{input_schema.field_names()} but "
                f"{right_schema.schema_name()} has "
                f"{right_schema.field_names()}"
            )
        super().__init__(input_schema, input_schema)
        self.right_dataset = right_dataset

    def describe(self) -> str:
        return f"union({self.right_dataset.schema.schema_name()})"


class Distinct(LogicalOperator):
    """Drop duplicates by the named fields (default: all fields)."""

    def __init__(self, input_schema: Type[Schema],
                 fields: Optional[Sequence[str]] = None):
        if fields:
            missing = [
                f for f in fields if f not in input_schema.field_map()
            ]
            if missing:
                raise SchemaError(
                    f"distinct fields {missing} not in schema "
                    f"{input_schema.schema_name()}"
                )
        super().__init__(input_schema, input_schema)
        self.fields = list(fields) if fields else None

    def describe(self) -> str:
        return f"distinct({self.fields or 'all fields'})"


class Sort(LogicalOperator):
    """Order records by ``field`` (blocking)."""

    def __init__(self, input_schema: Type[Schema], field: str,
                 descending: bool = False):
        if field not in input_schema.field_map():
            raise SchemaError(
                f"sort field {field!r} not in schema "
                f"{input_schema.schema_name()}"
            )
        super().__init__(input_schema, input_schema)
        self.field = field
        self.descending = descending

    def describe(self) -> str:
        direction = "desc" if self.descending else "asc"
        return f"sort({self.field}, {direction})"
