"""Exception hierarchy for the Palimpzest core."""

from __future__ import annotations


class PalimpzestError(Exception):
    """Base class for all core errors."""


class SchemaError(PalimpzestError):
    """Invalid schema definition or schema mismatch."""


class DatasetError(PalimpzestError):
    """Invalid dataset construction or unknown data source."""


class PlanError(PalimpzestError):
    """Invalid logical or physical plan."""


class ExecutionError(PalimpzestError):
    """A failure while executing a physical plan."""
