"""Conversion cardinality (§3: ``pz.Cardinality.ONE_TO_MANY``)."""

from __future__ import annotations

import enum


class Cardinality(enum.Enum):
    """How many output records a convert produces per input record."""

    ONE_TO_ONE = "one_to_one"
    ONE_TO_MANY = "one_to_many"

    @classmethod
    def parse(cls, value) -> "Cardinality":
        """Accept enum members, value strings, or names (case-insensitive)."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            needle = value.strip().lower()
            for member in cls:
                if needle in (member.value, member.name.lower()):
                    return member
        raise ValueError(
            f"cannot parse cardinality from {value!r}; expected one of "
            f"{[m.value for m in cls]}"
        )
