"""The fake-PDF container format.

The paper's demo ingests real PDFs of scientific papers; offline we need a
binary document format that (a) requires a real parsing step, (b) carries a
text layer and page structure, and (c) is deterministic to generate.  The
``%FPDF`` format below is a simplified PDF-like container:

.. code-block:: text

    %FPDF-1.0
    %%META {json metadata}
    %%PAGE 1
    <base64-ish obfuscated text stream>
    %%PAGE 2
    ...
    %%EOF

Text streams are reversibly obfuscated (rot13 + hex framing) so that the
text layer genuinely has to be *decoded*, exercising the same "extract text
from an opaque file" code path that real PDF parsing does.
"""

from __future__ import annotations

import codecs
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

MAGIC = "%FPDF-1.0"
_META_PREFIX = "%%META "
_PAGE_PREFIX = "%%PAGE "
_EOF = "%%EOF"

#: Approximate words per rendered page, used to split text into pages.
WORDS_PER_PAGE = 400


class FakePDFError(ValueError):
    """Raised when bytes do not parse as a fake-PDF document."""


def _encode_stream(text: str) -> str:
    rot = codecs.encode(text, "rot13")
    return rot.encode("utf-8").hex()


def _decode_stream(stream: str) -> str:
    try:
        rot = bytes.fromhex(stream.strip()).decode("utf-8")
    except ValueError as exc:
        raise FakePDFError(f"corrupt text stream: {exc}") from exc
    return codecs.decode(rot, "rot13")


@dataclass
class FakePDFDocument:
    """Parsed form of a fake-PDF: metadata plus per-page text."""

    pages: List[str]
    metadata: Dict[str, str] = field(default_factory=dict)

    @property
    def text(self) -> str:
        return "\n".join(self.pages)

    @property
    def page_count(self) -> int:
        return len(self.pages)


def paginate(text: str, words_per_page: int = WORDS_PER_PAGE) -> List[str]:
    """Split ``text`` into page-sized chunks on word boundaries."""
    words = [w for w in text.split(" ") if w]
    if not words:
        return [""]
    pages = []
    for start in range(0, len(words), words_per_page):
        pages.append(" ".join(words[start:start + words_per_page]))
    return pages or [""]


def write_fake_pdf(text: str, metadata: Optional[Dict[str, str]] = None,
                   words_per_page: int = WORDS_PER_PAGE) -> bytes:
    """Serialize ``text`` (+ optional metadata) into fake-PDF bytes."""
    lines = [MAGIC]
    lines.append(_META_PREFIX + json.dumps(metadata or {}, sort_keys=True))
    for number, page in enumerate(paginate(text, words_per_page), start=1):
        lines.append(f"{_PAGE_PREFIX}{number}")
        lines.append(_encode_stream(page))
    lines.append(_EOF)
    return "\n".join(lines).encode("utf-8")


def is_fake_pdf(data: bytes) -> bool:
    return data.startswith(MAGIC.encode("utf-8"))


def parse_fake_pdf(data: bytes) -> FakePDFDocument:
    """Parse fake-PDF bytes back into pages + metadata.

    Raises :class:`FakePDFError` on malformed input.
    """
    try:
        content = data.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise FakePDFError(f"not valid UTF-8: {exc}") from exc
    lines = content.splitlines()
    if not lines or lines[0] != MAGIC:
        raise FakePDFError(f"missing {MAGIC} header")

    metadata: Dict[str, str] = {}
    pages: List[str] = []
    saw_eof = False
    expecting_stream = False
    for line in lines[1:]:
        if line == _EOF:
            saw_eof = True
            break
        if line.startswith(_META_PREFIX):
            try:
                metadata = json.loads(line[len(_META_PREFIX):])
            except json.JSONDecodeError as exc:
                raise FakePDFError(f"corrupt metadata: {exc}") from exc
        elif line.startswith(_PAGE_PREFIX):
            expecting_stream = True
        elif expecting_stream:
            pages.append(_decode_stream(line))
            expecting_stream = False
    if not saw_eof:
        raise FakePDFError("truncated document: missing %%EOF")
    return FakePDFDocument(pages=pages, metadata=metadata)
