"""The fluent Dataset API — the user-facing surface of the core library.

Mirrors the programming model of Fig. 6::

    dataset = Dataset(source="sigmod-demo", schema=PDFFile)
    dataset = dataset.filter("The papers are about colorectal cancer")
    dataset = dataset.convert(ClinicalData, cardinality=Cardinality.ONE_TO_MANY)
    records, stats = Execute(dataset, policy=MaxQuality())

Each method returns a *new* Dataset wrapping the upstream one, so pipelines
are immutable values that can be branched and reused.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Iterable, Optional, Sequence, Tuple, Type, Union

from repro.core.cardinality import Cardinality
from repro.core.errors import DatasetError, PlanError
from repro.core.logical import (
    AggFunc,
    Aggregate,
    BaseScan,
    ConvertScan,
    FilterSpec,
    FilteredScan,
    GroupByAggregate,
    LimitScan,
    LogicalOperator,
    LogicalPlan,
    Project,
    RetrieveScan,
)
from repro.core.records import DataRecord
from repro.core.schemas import Schema
from repro.core.sources import (
    DataSource,
    DirectorySource,
    FileSource,
    MemorySource,
    global_source_registry,
)


def _resolve_source(
    source: Union[str, DataSource, Path, Iterable[Any]],
    schema: Optional[Type[Schema]],
) -> DataSource:
    """Turn any accepted ``source`` argument into a DataSource."""
    if isinstance(source, DataSource):
        return source
    if isinstance(source, str):
        registry = global_source_registry()
        if source in registry:
            return registry.get(source)
        path = Path(source)
        if path.is_dir():
            return DirectorySource(path, schema=schema)
        if path.is_file():
            return FileSource(path, schema=schema)
        return registry.get(source)  # raises with the registered ids listed
    if isinstance(source, Path):
        if source.is_dir():
            return DirectorySource(source, schema=schema)
        if source.is_file():
            return FileSource(source, schema=schema)
        raise DatasetError(f"path {source} does not exist")
    if isinstance(source, Iterable):
        return MemorySource(source, dataset_id="memory", schema=schema)
    raise DatasetError(
        f"cannot build a dataset from {type(source).__name__}"
    )


class Dataset:
    """A (possibly transformed) collection of records.

    Construct a root dataset from a source, then chain transformations; the
    chain *is* the logical plan.
    """

    def __init__(
        self,
        source: Union[str, DataSource, Path, Iterable[Any], None] = None,
        schema: Optional[Type[Schema]] = None,
        _upstream: Optional["Dataset"] = None,
        _operator: Optional[LogicalOperator] = None,
    ):
        if _upstream is not None:
            if _operator is None:
                raise PlanError("derived datasets need an operator")
            self._source: Optional[DataSource] = None
            self._upstream = _upstream
            self._operator: Optional[LogicalOperator] = _operator
            self.schema = _operator.output_schema
        else:
            if source is None:
                raise DatasetError("a root dataset needs a source")
            resolved = _resolve_source(source, schema)
            self._source = resolved
            self._upstream = None
            self.schema = schema or resolved.schema
            self._operator = BaseScan(resolved.dataset_id, self.schema)

    # -- plan construction ------------------------------------------------

    @property
    def source(self) -> DataSource:
        """The root data source of this pipeline."""
        node = self
        while node._upstream is not None:
            node = node._upstream
        assert node._source is not None
        return node._source

    def refresh_source(self) -> bool:
        """Re-resolve the root source from the registry by dataset id.

        An incremental re-run must see the *live* corpus: if a new
        source has been registered under the same dataset id since this
        pipeline was built (documents added/edited/dropped), swap it in.
        The logical plan is unchanged — the scan already addresses the
        source by id.  Returns True when the root source object changed.
        """
        node = self
        while node._upstream is not None:
            node = node._upstream
        assert node._source is not None
        from repro.core.sources import global_source_registry

        try:
            live = global_source_registry().get(node._source.dataset_id)
        except DatasetError:
            return False
        if live is node._source:
            return False
        node._source = live
        return True

    def logical_plan(self) -> LogicalPlan:
        """Collect the operator chain, scan first."""
        operators = []
        node: Optional[Dataset] = self
        while node is not None:
            if node._operator is not None:
                operators.append(node._operator)
            node = node._upstream
        return LogicalPlan(list(reversed(operators)))

    def _derive(self, operator: LogicalOperator) -> "Dataset":
        return Dataset(_upstream=self, _operator=operator)

    # -- transformations ----------------------------------------------------

    def filter(
        self,
        predicate: Union[str, Callable[[DataRecord], bool]],
        depends_on: Optional[Sequence[str]] = None,
    ) -> "Dataset":
        """Keep records satisfying a natural-language predicate or a UDF.

        >>> papers.filter("The papers are about colorectal cancer")
        >>> papers.filter(lambda r: r.page_count > 3)
        """
        if callable(predicate):
            spec = FilterSpec(udf=predicate, depends_on=depends_on)
        else:
            spec = FilterSpec(predicate=str(predicate), depends_on=depends_on)
        return self._derive(FilteredScan(self.schema, spec))

    def convert(
        self,
        output_schema: Type[Schema],
        desc: str = "",
        cardinality: Union[Cardinality, str] = Cardinality.ONE_TO_ONE,
        udf: Optional[Callable[[DataRecord], Any]] = None,
        depends_on: Optional[Sequence[str]] = None,
    ) -> "Dataset":
        """Transform records into ``output_schema``, computing new fields.

        With ``udf`` the new fields come from Python code; otherwise an LLM
        extraction computes them.  ``cardinality=ONE_TO_MANY`` lets one
        input yield several outputs.  ``depends_on`` restricts the text the
        model sees to the named input fields (smaller prompts).
        """
        return self._derive(
            ConvertScan(
                self.schema,
                output_schema,
                cardinality=Cardinality.parse(cardinality),
                desc=desc,
                udf=udf,
                depends_on=depends_on,
            )
        )

    def project(self, fields: Sequence[str]) -> "Dataset":
        """Keep only the named fields."""
        return self._derive(Project(self.schema, fields))

    def limit(self, n: int) -> "Dataset":
        """Pass through at most ``n`` records."""
        return self._derive(LimitScan(self.schema, n))

    def retrieve(self, query: str, k: int = 5) -> "Dataset":
        """Semantic top-k: the ``k`` records most similar to ``query``."""
        return self._derive(RetrieveScan(self.schema, query, k))

    # -- binary and set operators -----------------------------------------

    def join(
        self,
        right: "Dataset",
        predicate: Optional[str] = None,
        udf: Optional[Callable[[DataRecord, DataRecord], bool]] = None,
    ) -> "Dataset":
        """Join against another dataset.

        Pass ``predicate`` (natural language, judged per record pair by a
        model — a *semantic join*) or ``udf`` (``fn(left, right) -> bool``).
        The right-hand pipeline is optimized and materialized when the join
        executes; its costs are accounted to the join operator.

        >>> papers.join(datasets_list, "The paper uses the dataset")
        """
        from repro.core.logical_ext import JoinScan  # local: optional ext

        return self._derive(
            JoinScan(self.schema, right, predicate=predicate, udf=udf)
        )

    def union(self, right: "Dataset") -> "Dataset":
        """Concatenate another dataset with the same fields."""
        from repro.core.logical_ext import UnionScan

        return self._derive(UnionScan(self.schema, right))

    def distinct(self, fields: Optional[Sequence[str]] = None) -> "Dataset":
        """Drop duplicate records (by ``fields``, or all fields)."""
        from repro.core.logical_ext import Distinct

        return self._derive(Distinct(self.schema, fields))

    def sort(self, field: str, descending: bool = False) -> "Dataset":
        """Order records by ``field`` (blocking; None values last)."""
        from repro.core.logical_ext import Sort

        return self._derive(Sort(self.schema, field, descending=descending))

    # -- aggregates -----------------------------------------------------

    def count(self) -> "Dataset":
        return self._derive(Aggregate(self.schema, AggFunc.COUNT))

    def average(self, field: str) -> "Dataset":
        return self._derive(Aggregate(self.schema, AggFunc.AVERAGE, field))

    def sum(self, field: str) -> "Dataset":
        return self._derive(Aggregate(self.schema, AggFunc.SUM, field))

    def min(self, field: str) -> "Dataset":
        return self._derive(Aggregate(self.schema, AggFunc.MIN, field))

    def max(self, field: str) -> "Dataset":
        return self._derive(Aggregate(self.schema, AggFunc.MAX, field))

    def groupby(
        self,
        group_fields: Sequence[str],
        aggregates: Sequence[Tuple[Union[AggFunc, str], Optional[str]]],
    ) -> "Dataset":
        """GROUP BY with aggregates, e.g. ``groupby(["city"], [("count", None)])``."""
        parsed = [(AggFunc.parse(func), field) for func, field in aggregates]
        return self._derive(
            GroupByAggregate(self.schema, group_fields, parsed)
        )

    # -- execution sugar -----------------------------------------------

    def run(self, policy=None, **kwargs):
        """Execute this pipeline; see :func:`repro.execution.execute.Execute`."""
        from repro.execution.execute import Execute  # deferred: avoids cycle

        return Execute(self, policy=policy, **kwargs)

    def explain(self, policy=None, **kwargs) -> str:
        """EXPLAIN this pipeline: plan space + Pareto frontier + choice."""
        from repro.execution.execute import ExecutionEngine

        return ExecutionEngine(policy=policy, **kwargs).explain(self)

    def __repr__(self) -> str:
        return f"Dataset({self.logical_plan().describe()})"
