"""Palimpzest core: schemas, records, data sources, and the Dataset API.

This package implements the declarative surface of the system described in
§2.1 of the paper: users define *schemas* (named, described fields over
unstructured data), register *datasets* (folders, in-memory collections, or
custom marshalers), and compose *logical plans* from relational and semantic
operators — ``filter`` with natural-language predicates or UDFs, ``convert``
between schemas (one-to-one or one-to-many), plus projection, aggregation,
group-by, limit, and semantic top-k retrieval.
"""

from repro.core.fields import (
    Field,
    StringField,
    NumericField,
    BooleanField,
    ListField,
    BytesField,
    UrlField,
)
from repro.core.schemas import Schema, make_schema, schema_signature
from repro.core.builtin_schemas import (
    File,
    TextFile,
    PDFFile,
    HTMLFile,
    CSVFile,
    Email,
    SCHEMA_BY_EXTENSION,
)
from repro.core.records import DataRecord
from repro.core.cardinality import Cardinality
from repro.core.sources import (
    DataSource,
    DirectorySource,
    FileSource,
    MemorySource,
    CallbackSource,
    DataSourceRegistry,
    global_source_registry,
    register_datasource,
)
from repro.core.dataset import Dataset
from repro.core.errors import SchemaError, DatasetError, PlanError

__all__ = [
    "Field",
    "StringField",
    "NumericField",
    "BooleanField",
    "ListField",
    "BytesField",
    "UrlField",
    "Schema",
    "make_schema",
    "schema_signature",
    "File",
    "TextFile",
    "PDFFile",
    "HTMLFile",
    "CSVFile",
    "Email",
    "SCHEMA_BY_EXTENSION",
    "DataRecord",
    "Cardinality",
    "DataSource",
    "DirectorySource",
    "FileSource",
    "MemorySource",
    "CallbackSource",
    "DataSourceRegistry",
    "global_source_registry",
    "register_datasource",
    "Dataset",
    "SchemaError",
    "DatasetError",
    "PlanError",
]
