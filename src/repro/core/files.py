"""File parsing: turn files on disk into schema-shaped records.

Implements the "native PDFfile schema ... automatically chosen to parse the
files in this dataset given their extension" behaviour (§3), plus parsers for
the other built-in file schemas.
"""

from __future__ import annotations

import csv
import io
import re
from pathlib import Path
from typing import Optional, Tuple, Type

from repro.core import fakepdf
from repro.core.builtin_schemas import (
    CSVFile,
    Email,
    File,
    HTMLFile,
    PDFFile,
    SCHEMA_BY_EXTENSION,
    TextFile,
)
from repro.core.records import DataRecord
from repro.core.schemas import Schema

_TAG_RE = re.compile(r"<[^>]+>")
_TITLE_RE = re.compile(r"<title[^>]*>(.*?)</title>", re.I | re.S)


def schema_for_path(path: Path) -> Type[Schema]:
    """Pick the native schema for a file from its extension."""
    return SCHEMA_BY_EXTENSION.get(Path(path).suffix.lower(), File)


def _decode_best_effort(data: bytes) -> str:
    try:
        return data.decode("utf-8")
    except UnicodeDecodeError:
        return data.decode("latin-1", errors="replace")


def _parse_pdf(path: Path, data: bytes, record: DataRecord) -> None:
    if fakepdf.is_fake_pdf(data):
        document = fakepdf.parse_fake_pdf(data)
        record.text_contents = document.text
        record.page_count = document.page_count
        return
    # Real-PDF salvage path: strip binary noise, keep printable runs.  This
    # is deliberately crude — the corpora use fake-PDFs — but it keeps the
    # system from crashing if a user points it at a real document.
    text = _decode_best_effort(data)
    printable = re.findall(r"[ -~]{6,}", text)
    record.text_contents = "\n".join(printable)
    record.page_count = max(1, text.count("/Page"))


def _parse_html(path: Path, data: bytes, record: DataRecord) -> None:
    html = _decode_best_effort(data)
    title_match = _TITLE_RE.search(html)
    record.title = title_match.group(1).strip() if title_match else ""
    body = _TAG_RE.sub(" ", html)
    record.text_contents = re.sub(r"\s+", " ", body).strip()


def _parse_csv(path: Path, data: bytes, record: DataRecord) -> None:
    text = _decode_best_effort(data)
    record.text_contents = text
    reader = csv.reader(io.StringIO(text))
    rows = list(reader)
    record.header = rows[0] if rows else []
    record.rows = rows[1:] if len(rows) > 1 else []


_EMAIL_HEADER_RE = re.compile(r"^(From|To|Subject|Date):\s*(.*)$", re.M)


def _parse_email(path: Path, data: bytes, record: DataRecord) -> None:
    text = _decode_best_effort(data)
    headers = dict(
        (key.lower(), value.strip())
        for key, value in _EMAIL_HEADER_RE.findall(text)
    )
    record.sender = headers.get("from", "")
    record.recipient = headers.get("to", "")
    record.subject = headers.get("subject", "")
    record.sent_date = headers.get("date", "")
    # The body is everything after the first blank line.
    parts = re.split(r"\n\s*\n", text, maxsplit=1)
    record.body = parts[1].strip() if len(parts) > 1 else text


def parse_file(
    path: Path,
    schema: Optional[Type[Schema]] = None,
    source_id: Optional[str] = None,
) -> DataRecord:
    """Read ``path`` and marshal it into a record of the native schema.

    Args:
        path: file to read.
        schema: override the extension-based schema choice.
        source_id: dataset id to stamp on the record.
    """
    path = Path(path)
    schema = schema or schema_for_path(path)
    data = path.read_bytes()

    record = DataRecord(schema, source_id=source_id)
    if "filename" in schema.field_map():
        record.filename = path.name
    if "contents" in schema.field_map():
        record.contents = data

    if issubclass(schema, PDFFile):
        _parse_pdf(path, data, record)
    elif issubclass(schema, HTMLFile):
        _parse_html(path, data, record)
    elif issubclass(schema, CSVFile):
        _parse_csv(path, data, record)
    elif schema is Email or issubclass(schema, Email):
        _parse_email(path, data, record)
    elif issubclass(schema, TextFile):
        record.text_contents = _decode_best_effort(data)
    return record
