"""Projection and limit: streaming structural operators."""

from __future__ import annotations

from typing import List

from repro.core.logical import LimitScan, Project
from repro.core.records import DataRecord
from repro.physical.base import (
    OperatorCostEstimates,
    PhysicalOperator,
    StreamEstimate,
)


class ProjectOp(PhysicalOperator):
    """Keep only the projected fields (schema narrows)."""

    strategy = "Project"

    def __init__(self, logical_op: Project):
        super().__init__(logical_op)
        self.project: Project = logical_op

    def process(self, record: DataRecord) -> List[DataRecord]:
        self._charge_local_time(0.0001)
        values = {name: record.get(name) for name in self.project.fields}
        return [record.derive(self.project.output_schema, values)]

    def naive_estimates(self, stream: StreamEstimate) -> OperatorCostEstimates:
        return OperatorCostEstimates(
            cardinality=stream.cardinality,
            time_per_record=0.0001,
            cost_per_record=0.0,
            quality=1.0,
        )


class LimitOp(PhysicalOperator):
    """Pass through the first ``n`` records, then signal exhaustion.

    The executor checks :attr:`exhausted` to stop pulling upstream early —
    limits genuinely save LLM calls, as they must for MinCost plans.
    """

    strategy = "Limit"

    def __init__(self, logical_op: LimitScan):
        super().__init__(logical_op)
        self.limit = logical_op.limit
        self._emitted = 0

    def open(self, context) -> None:
        super().open(context)
        self._emitted = 0

    @property
    def exhausted(self) -> bool:
        return self._emitted >= self.limit

    def process(self, record: DataRecord) -> List[DataRecord]:
        if self.exhausted:
            return []
        self._emitted += 1
        return [record]

    def naive_estimates(self, stream: StreamEstimate) -> OperatorCostEstimates:
        return OperatorCostEstimates(
            cardinality=min(stream.cardinality, float(self.limit)),
            time_per_record=0.0,
            cost_per_record=0.0,
            quality=1.0,
        )
