"""Projection and limit: streaming structural operators."""

from __future__ import annotations

from typing import List

from repro.core.logical import LimitScan, Project
from repro.core.records import DataRecord
from repro.obs.provenance import DropReason
from repro.physical.base import (
    OperatorCostEstimates,
    PhysicalOperator,
    StreamEstimate,
)


class ProjectOp(PhysicalOperator):
    """Keep only the projected fields (schema narrows)."""

    strategy = "Project"

    def __init__(self, logical_op: Project):
        super().__init__(logical_op)
        self.project: Project = logical_op

    def process(self, record: DataRecord) -> List[DataRecord]:
        self._charge_local_time(0.0001)
        values = {name: record.get(name) for name in self.project.fields}
        child = record.derive(self.project.output_schema, values)
        prov = self.provenance
        if prov.enabled:
            prov.emit(self, [record], [child],
                      fields=",".join(self.project.fields))
        return [child]

    def naive_estimates(self, stream: StreamEstimate) -> OperatorCostEstimates:
        return OperatorCostEstimates(
            cardinality=stream.cardinality,
            time_per_record=0.0001,
            cost_per_record=0.0,
            quality=1.0,
        )


class LimitOp(PhysicalOperator):
    """Pass through the first ``n`` records, then signal exhaustion.

    The executor checks :attr:`exhausted` to stop pulling upstream early —
    limits genuinely save LLM calls, as they must for MinCost plans.
    """

    strategy = "Limit"

    def __init__(self, logical_op: LimitScan):
        super().__init__(logical_op)
        self.limit = logical_op.limit
        self._emitted = 0
        self._seen = 0

    def open(self, context) -> None:
        super().open(context)
        self._emitted = 0
        self._seen = 0

    @property
    def exhausted(self) -> bool:
        return self._emitted >= self.limit

    def process(self, record: DataRecord) -> List[DataRecord]:
        # Limits run on a serial stage in every executor, so arrival
        # positions are deterministic at any worker count.
        self._seen += 1
        prov = self.provenance
        if self.exhausted:
            if prov.enabled:
                prov.drop(self, record, DropReason.LIMIT_CUTOFF,
                          position=self._seen, limit=self.limit)
            return []
        self._emitted += 1
        if prov.enabled:
            prov.emit(self, [record], [record], position=self._seen,
                      limit=self.limit)
        return [record]

    def naive_estimates(self, stream: StreamEstimate) -> OperatorCostEstimates:
        return OperatorCostEstimates(
            cardinality=min(stream.cardinality, float(self.limit)),
            time_per_record=0.0,
            cost_per_record=0.0,
            quality=1.0,
        )
