"""Physical plans: an executable chain of physical operators."""

from __future__ import annotations

import hashlib
from typing import List, Optional

from repro.core.errors import PlanError
from repro.physical.base import PhysicalOperator
from repro.physical.scan import MarshalAndScan


def shard_safe(op: PhysicalOperator) -> bool:
    """Can ``op`` process records shard-parallel with identical results?

    True for stateless record-local streaming operators: LLM-bound filters,
    converts, and semantic joins (answers are pure functions of
    ``(model, document, task)``), plus projections.  Order-sensitive
    streaming operators (limits, distinct, code-synthesis converts — the
    first records seen become exemplars) and blocking operators must run
    post-gather in global arrival order.

    Shared by the sharded/async executors and the cost model so the priced
    shardable prefix is exactly the executed one.
    """
    from repro.physical.converts import CodeSynthesisConvert
    from repro.physical.structural import ProjectOp

    if isinstance(op, ProjectOp):
        return True
    return (
        op.is_llm_op
        and not op.is_blocking
        and not isinstance(op, CodeSynthesisConvert)
    )


class PhysicalPlan:
    """A linear chain of physical operators, scan first.

    ``batch_size`` is a physical dimension of the plan: LLM-bound stages
    may process records in batches of this size, amortizing the fixed
    per-call overhead (prompt-prefix construction, connection setup) across
    the batch.  It changes *when* simulated time is charged, never which
    records are produced, so two plans differing only in batch size share
    a ``plan_id``.

    ``shards`` is the data-parallelism degree the optimizer chose for the
    sharded/async executors: the source is partitioned into this many
    deterministic shards and the shardable operator prefix runs once per
    shard.  Like batch size, it never changes which records are produced,
    so it is excluded from ``plan_id`` too.
    """

    def __init__(self, operators: List[PhysicalOperator],
                 batch_size: int = 1, shards: int = 1):
        if not operators:
            raise PlanError("a physical plan needs at least one operator")
        if not isinstance(operators[0], MarshalAndScan):
            raise PlanError("a physical plan must start with MarshalAndScan")
        if batch_size < 1:
            raise PlanError(f"batch_size must be >= 1, got {batch_size}")
        if shards < 1:
            raise PlanError(f"shards must be >= 1, got {shards}")
        self.operators = list(operators)
        self.batch_size = batch_size
        self.shards = shards

    @property
    def scan(self) -> MarshalAndScan:
        return self.operators[0]  # type: ignore[return-value]

    @property
    def downstream(self) -> List[PhysicalOperator]:
        return self.operators[1:]

    @property
    def plan_id(self) -> str:
        material = "|".join(op.full_op_id for op in self.operators)
        return hashlib.sha256(material.encode("utf-8")).hexdigest()[:12]

    def with_batch_size(self, batch_size: int) -> "PhysicalPlan":
        """A copy of this plan whose LLM stages run in ``batch_size`` batches."""
        return PhysicalPlan(self.operators, batch_size=batch_size,
                            shards=self.shards)

    def with_shards(self, shards: int) -> "PhysicalPlan":
        """A copy of this plan scattered across ``shards`` source shards."""
        return PhysicalPlan(self.operators, batch_size=self.batch_size,
                            shards=shards)

    @property
    def shardable_prefix(self) -> List[PhysicalOperator]:
        """The maximal run of shard-safe operators after the scan."""
        prefix: List[PhysicalOperator] = []
        for op in self.downstream:
            if not shard_safe(op):
                break
            prefix.append(op)
        return prefix

    def models_used(self) -> List[str]:
        return sorted(
            {op.model.name for op in self.operators if op.model is not None}
        )

    def describe(self) -> str:
        return " -> ".join(op.op_label for op in self.operators)

    def explain(self) -> str:
        """A multi-line EXPLAIN-style rendering."""
        lines = [f"PhysicalPlan {self.plan_id}:"]
        for depth, op in enumerate(self.operators):
            indent = "  " * depth
            lines.append(f"{indent}{op.op_label}  <- {op.logical_op.describe()}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.operators)

    def __iter__(self):
        return iter(self.operators)

    def __repr__(self) -> str:
        return f"PhysicalPlan({self.describe()})"
