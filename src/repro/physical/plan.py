"""Physical plans: an executable chain of physical operators."""

from __future__ import annotations

import hashlib
from typing import List, Optional

from repro.core.errors import PlanError
from repro.physical.base import PhysicalOperator
from repro.physical.scan import MarshalAndScan


class PhysicalPlan:
    """A linear chain of physical operators, scan first.

    ``batch_size`` is a physical dimension of the plan: LLM-bound stages
    may process records in batches of this size, amortizing the fixed
    per-call overhead (prompt-prefix construction, connection setup) across
    the batch.  It changes *when* simulated time is charged, never which
    records are produced, so two plans differing only in batch size share
    a ``plan_id``.
    """

    def __init__(self, operators: List[PhysicalOperator],
                 batch_size: int = 1):
        if not operators:
            raise PlanError("a physical plan needs at least one operator")
        if not isinstance(operators[0], MarshalAndScan):
            raise PlanError("a physical plan must start with MarshalAndScan")
        if batch_size < 1:
            raise PlanError(f"batch_size must be >= 1, got {batch_size}")
        self.operators = list(operators)
        self.batch_size = batch_size

    @property
    def scan(self) -> MarshalAndScan:
        return self.operators[0]  # type: ignore[return-value]

    @property
    def downstream(self) -> List[PhysicalOperator]:
        return self.operators[1:]

    @property
    def plan_id(self) -> str:
        material = "|".join(op.full_op_id for op in self.operators)
        return hashlib.sha256(material.encode("utf-8")).hexdigest()[:12]

    def with_batch_size(self, batch_size: int) -> "PhysicalPlan":
        """A copy of this plan whose LLM stages run in ``batch_size`` batches."""
        return PhysicalPlan(self.operators, batch_size=batch_size)

    def models_used(self) -> List[str]:
        return sorted(
            {op.model.name for op in self.operators if op.model is not None}
        )

    def describe(self) -> str:
        return " -> ".join(op.op_label for op in self.operators)

    def explain(self) -> str:
        """A multi-line EXPLAIN-style rendering."""
        lines = [f"PhysicalPlan {self.plan_id}:"]
        for depth, op in enumerate(self.operators):
            indent = "  " * depth
            lines.append(f"{indent}{op.op_label}  <- {op.logical_op.describe()}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.operators)

    def __iter__(self):
        return iter(self.operators)

    def __repr__(self) -> str:
        return f"PhysicalPlan({self.describe()})"
