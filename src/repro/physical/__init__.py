"""Physical operators: executable implementations of logical operators.

"For each logical operator, multiple equivalent physical implementations may
be available.  For instance, a filter operation might be performed via
different LLM models, each representing a distinct physical method." (§2.1)

Every semantic logical operator maps to a *family* of physical operators —
one per registered model, times prompt strategies (bonded vs conventional
extraction, token-reduced context, synthesized-code extraction, embedding
pre-filtering) — giving the optimizer a genuine search space with
cost/latency/quality trade-offs.
"""

from repro.physical.context import ExecutionContext
from repro.physical.base import (
    PhysicalOperator,
    BlockingPhysicalOperator,
    OperatorCostEstimates,
    StreamEstimate,
)
from repro.physical.scan import MarshalAndScan
from repro.physical.filters import NonLLMFilter, LLMFilter, EmbeddingFilter
from repro.physical.converts import (
    NonLLMConvert,
    LLMConvertBonded,
    LLMConvertConventional,
    TokenReducedConvert,
    CodeSynthesisConvert,
)
from repro.physical.aggregates import AggregateOp, GroupByOp
from repro.physical.structural import ProjectOp, LimitOp
from repro.physical.retrieve import RetrieveOp
from repro.physical.joins import (
    NestedLoopUDFJoin,
    LLMSemanticJoin,
    EmbeddingBlockedJoin,
)
from repro.physical.setops import UnionOp, DistinctOp, SortOp
from repro.physical.plan import PhysicalPlan

__all__ = [
    "ExecutionContext",
    "PhysicalOperator",
    "BlockingPhysicalOperator",
    "OperatorCostEstimates",
    "StreamEstimate",
    "MarshalAndScan",
    "NonLLMFilter",
    "LLMFilter",
    "EmbeddingFilter",
    "NonLLMConvert",
    "LLMConvertBonded",
    "LLMConvertConventional",
    "TokenReducedConvert",
    "CodeSynthesisConvert",
    "AggregateOp",
    "GroupByOp",
    "ProjectOp",
    "LimitOp",
    "RetrieveOp",
    "NestedLoopUDFJoin",
    "LLMSemanticJoin",
    "EmbeddingBlockedJoin",
    "UnionOp",
    "DistinctOp",
    "SortOp",
    "PhysicalPlan",
]
