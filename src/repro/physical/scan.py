"""The scan operator: marshal records out of a data source."""

from __future__ import annotations

from typing import Iterator, List

from repro.core.logical import BaseScan
from repro.core.records import DataRecord
from repro.core.sources import DataSource
from repro.physical.base import (
    LOCAL_OP_SECONDS,
    OperatorCostEstimates,
    PhysicalOperator,
    StreamEstimate,
)

#: Simulated parse time per 1k document tokens (file IO + text extraction).
PARSE_SECONDS_PER_1K_TOKENS = 0.05


class MarshalAndScan(PhysicalOperator):
    """Iterate a :class:`DataSource`, charging simulated parse time.

    Unlike the other operators, a scan has no input records; the executor
    calls :meth:`records` to obtain the stream.
    """

    strategy = "MarshalAndScan"

    def __init__(self, logical_op: BaseScan, source: DataSource):
        super().__init__(logical_op)
        self.source = source

    def records(self) -> Iterator[DataRecord]:
        from repro.llm.tokenizer import count_tokens

        for record in self.source:
            tokens = count_tokens(record.document_text())
            self._charge_local_time(
                LOCAL_OP_SECONDS + tokens / 1000.0 * PARSE_SECONDS_PER_1K_TOKENS
            )
            yield record

    def process(self, record: DataRecord) -> List[DataRecord]:
        # Scans are stream heads; process() is identity for executor symmetry.
        return [record]

    def naive_estimates(self, stream: StreamEstimate) -> OperatorCostEstimates:
        parse_time = (
            LOCAL_OP_SECONDS
            + stream.avg_document_tokens / 1000.0 * PARSE_SECONDS_PER_1K_TOKENS
        )
        return OperatorCostEstimates(
            cardinality=stream.cardinality,
            time_per_record=parse_time,
            cost_per_record=0.0,
            quality=1.0,
        )
