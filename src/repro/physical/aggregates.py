"""Physical aggregation operators (conventional database semantics)."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.logical import AggFunc, Aggregate, GroupByAggregate
from repro.core.records import DataRecord
from repro.obs.provenance import DropReason
from repro.physical.base import (
    LOCAL_OP_SECONDS,
    BlockingPhysicalOperator,
    OperatorCostEstimates,
    StreamEstimate,
)


def _numeric(value: Any) -> Optional[float]:
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value.replace(",", ""))
        except ValueError:
            return None
    return None


def _reduce(func: AggFunc, values: List[float], count: int) -> Optional[float]:
    if func is AggFunc.COUNT:
        return float(count)
    if not values:
        return None
    if func is AggFunc.AVERAGE:
        return sum(values) / len(values)
    if func is AggFunc.SUM:
        return sum(values)
    if func is AggFunc.MIN:
        return min(values)
    if func is AggFunc.MAX:
        return max(values)
    raise ValueError(f"unhandled aggregate function {func}")


class AggregateOp(BlockingPhysicalOperator):
    """Whole-dataset scalar aggregate: one output record."""

    strategy = "Aggregate"
    # The fold is a constant-time append; scale-out executors pay the charge
    # shard-locally and replay the mutation in global order at the gather.
    accumulate_seconds = LOCAL_OP_SECONDS

    def __init__(self, logical_op: Aggregate):
        super().__init__(logical_op)
        self.agg: Aggregate = logical_op
        self._count = 0
        self._values: List[float] = []
        self._records: List[DataRecord] = []

    def open(self, context) -> None:
        super().open(context)
        self._count = 0
        self._values = []
        self._records = []

    def accumulate(self, record: DataRecord) -> None:
        self._charge_local_time()
        self.accumulate_silent(record)

    def accumulate_silent(self, record: DataRecord) -> None:
        self._count += 1
        self._records.append(record)
        if self.agg.field is not None:
            value = _numeric(record.get(self.agg.field))
            if value is not None:
                self._values.append(value)
        prov = self.provenance
        if prov.enabled:
            prov.drop(self, record, DropReason.AGGREGATE_FOLD,
                      func=self.agg.func.value)

    def close(self) -> List[DataRecord]:
        result = _reduce(self.agg.func, self._values, self._count)
        record = DataRecord(self.agg.output_schema,
                            extra_parents=tuple(self._records))
        setattr(record, self.agg.alias, result)
        prov = self.provenance
        if prov.enabled:
            # An aggregate over empty input still emits one record; its
            # emit event then has no parents (folded=0 marks the case).
            prov.emit(self, self._records, [record],
                      func=self.agg.func.value, folded=self._count)
        return [record]

    def naive_estimates(self, stream: StreamEstimate) -> OperatorCostEstimates:
        return OperatorCostEstimates(
            cardinality=1.0,
            time_per_record=0.0005,
            cost_per_record=0.0,
            quality=1.0,
        )


class GroupByOp(BlockingPhysicalOperator):
    """Hash group-by with per-group aggregates."""

    strategy = "GroupBy"
    # Decomposable like AggregateOp: close() sorts groups, so group state is
    # insensitive to which shard paid each record's fold charge.
    accumulate_seconds = LOCAL_OP_SECONDS

    def __init__(self, logical_op: GroupByAggregate):
        super().__init__(logical_op)
        self.groupby: GroupByAggregate = logical_op
        self._groups: Dict[Tuple, Dict[str, Any]] = {}

    def open(self, context) -> None:
        super().open(context)
        self._groups = {}

    def accumulate(self, record: DataRecord) -> None:
        self._charge_local_time()
        self.accumulate_silent(record)

    def accumulate_silent(self, record: DataRecord) -> None:
        key = tuple(
            str(record.get(field)) for field in self.groupby.group_fields
        )
        state = self._groups.setdefault(
            key, {"count": 0, "values": {}, "records": []}
        )
        state["count"] += 1
        state["records"].append(record)
        for func, agg_field, alias in self.groupby.aggregates:
            if agg_field is None:
                continue
            value = _numeric(record.get(agg_field))
            if value is not None:
                state["values"].setdefault(alias, []).append(value)
        prov = self.provenance
        if prov.enabled:
            prov.drop(self, record, DropReason.AGGREGATE_FOLD,
                      group="|".join(key))

    def close(self) -> List[DataRecord]:
        prov = self.provenance
        out: List[DataRecord] = []
        for key, state in sorted(self._groups.items()):
            record = DataRecord(self.groupby.output_schema,
                                extra_parents=tuple(state["records"]))
            for field_name, value in zip(self.groupby.group_fields, key):
                setattr(record, field_name, value)
            for func, agg_field, alias in self.groupby.aggregates:
                values = state["values"].get(alias, [])
                setattr(record, alias, _reduce(func, values, state["count"]))
            if prov.enabled:
                prov.emit(self, state["records"], [record],
                          group="|".join(key), folded=state["count"])
            out.append(record)
        return out

    def naive_estimates(self, stream: StreamEstimate) -> OperatorCostEstimates:
        # Guess ~sqrt(n) distinct groups, a classic heuristic.
        groups = max(1.0, stream.cardinality ** 0.5)
        return OperatorCostEstimates(
            cardinality=groups,
            time_per_record=0.0005,
            cost_per_record=0.0,
            quality=1.0,
        )
