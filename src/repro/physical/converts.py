"""Physical implementations of the *Convert* logical operator.

The plan space per convert, mirroring Palimpzest's strategies:

* :class:`NonLLMConvert` — a Python UDF computes the new fields.
* :class:`LLMConvertBonded` — one extraction call computes *all* new fields.
* :class:`LLMConvertConventional` — one call *per field*: more calls (more
  cost and latency) but each question is simpler, so slightly higher quality.
* :class:`TokenReducedConvert` — bonded extraction over a truncated context:
  cheaper and faster, lower quality.
* :class:`CodeSynthesisConvert` — spend a few LLM calls on exemplar records,
  then "synthesize code" (here: fall back to the deterministic heuristic
  engine at a reduced quality tier) for the remaining records at near-zero
  marginal cost.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.core.cardinality import Cardinality
from repro.core.errors import ExecutionError
from repro.core.logical import ConvertScan
from repro.core.records import DataRecord
from repro.llm import quality as quality_model
from repro.llm.client import ExtractionRequest, SimulatedLLMClient
from repro.llm.models import ModelCard
from repro.llm.prompts import estimate_output_tokens_for_fields
from repro.obs.provenance import DropReason
from repro.physical.base import (
    OperatorCostEstimates,
    PhysicalOperator,
    StreamEstimate,
)
from repro.physical.context import ExecutionContext

#: Difficulty prior for extraction quality estimates before sampling.
DEFAULT_DIFFICULTY_PRIOR = 0.35

#: Assumed fan-out of a one-to-many convert before sampling.
DEFAULT_ONE_TO_MANY_FANOUT = 1.5

#: Prompt-instruction overhead in tokens (per call).
_INSTRUCTION_TOKENS = 90

#: Conventional (per-field) extraction asks one simple question at a time,
#: which buys a small quality edge over the bonded single call.
CONVENTIONAL_QUALITY_BONUS = 0.03


class _ConvertBase(PhysicalOperator):
    """Shared record-building machinery for all convert implementations."""

    def __init__(self, logical_op: ConvertScan,
                 model: Optional[ModelCard] = None):
        super().__init__(logical_op, model=model)
        self.convert: ConvertScan = logical_op

    def _document_for(self, record: DataRecord) -> str:
        """The text the model should see (honours ``depends_on``)."""
        if self.convert.depends_on:
            return record.fields_text(self.convert.depends_on)
        return record.document_text()

    @property
    def _new_field_descriptions(self) -> Dict[str, str]:
        descs = self.convert.output_schema.field_descriptions()
        return {name: descs[name] for name in self.convert.new_fields}

    def _build_outputs(self, record: DataRecord, payload: Any,
                       llm: Optional[List[Any]] = None) -> List[DataRecord]:
        """Turn extraction payloads (dict or list of dicts) into records.

        The single choke point every convert strategy emits through, so
        it also reports the derivation (or an empty-payload drop) to the
        provenance recorder; ``llm`` carries the usage records of the
        calls that paid for this record's extraction.
        """
        if self.convert.cardinality is Cardinality.ONE_TO_MANY:
            rows = payload if isinstance(payload, list) else [payload]
            outputs = [
                record.derive(self.convert.output_schema, row)
                for row in rows
                if isinstance(row, dict)
            ]
        else:
            if isinstance(payload, list):
                payload = payload[0] if payload else {}
            if not isinstance(payload, dict):
                raise ExecutionError(
                    f"{self.op_label} produced a non-dict payload: "
                    f"{type(payload).__name__}"
                )
            outputs = [record.derive(self.convert.output_schema, payload)]
        prov = self.provenance
        if prov.enabled:
            if outputs:
                prov.emit(self, [record], outputs, llm=llm,
                          fanout=len(outputs))
            else:
                prov.drop(self, record, DropReason.CONVERT_EMPTY, llm=llm)
        return outputs

    def _estimate_fanout(self) -> float:
        if self.convert.cardinality is Cardinality.ONE_TO_MANY:
            return DEFAULT_ONE_TO_MANY_FANOUT
        return 1.0


class NonLLMConvert(_ConvertBase):
    """The user's UDF computes the new fields (free, assumed correct)."""

    strategy = "NonLLMConvert"

    def __init__(self, logical_op: ConvertScan):
        if logical_op.udf is None:
            raise ValueError("NonLLMConvert requires a UDF")
        super().__init__(logical_op)
        self._udf = logical_op.udf

    def process(self, record: DataRecord) -> List[DataRecord]:
        self._charge_local_time()
        return self._build_outputs(record, self._udf(record))

    def naive_estimates(self, stream: StreamEstimate) -> OperatorCostEstimates:
        return OperatorCostEstimates(
            cardinality=stream.cardinality * self._estimate_fanout(),
            time_per_record=0.001,
            cost_per_record=0.0,
            quality=1.0,
        )


class LLMConvertBonded(_ConvertBase):
    """One extraction call for all new fields together."""

    strategy = "LLMConvertBonded"
    context_fraction = 1.0

    def __init__(self, logical_op: ConvertScan, model: ModelCard):
        if not logical_op.is_semantic:
            raise ValueError("LLM converts require a semantic ConvertScan")
        super().__init__(logical_op, model=model)
        self._client: Optional[SimulatedLLMClient] = None

    def _effective_model(self) -> ModelCard:
        return self.model

    def open(self, context: ExecutionContext) -> None:
        super().open(context)
        self._client = SimulatedLLMClient(
            self._effective_model(),
            clock=context.clock,
            ledger=context.ledger,
            oracle=context.oracle,
            registry=context.models,
            cache=context.cache,
            tracer=context.tracer,
            replay=context.replay,
        )

    def _request_for(self, record: DataRecord) -> ExtractionRequest:
        return ExtractionRequest(
            fields=self._new_field_descriptions,
            document=self._document_for(record),
            schema_description=self.convert.desc,
            one_to_many=(
                self.convert.cardinality is Cardinality.ONE_TO_MANY
            ),
            operation=(
                f"convert:{self.convert.output_schema.schema_name()}"
            ),
            context_fraction=self.context_fraction,
        )

    def process(self, record: DataRecord) -> List[DataRecord]:
        assert self._client is not None, "operator not opened"
        response = self._client.extract(self._request_for(record))
        return self._build_outputs(record, response.value,
                                   llm=[response.usage])

    async def aprocess(self, record: DataRecord) -> List[DataRecord]:
        assert self._client is not None, "operator not opened"
        response = await self._client.aextract(self._request_for(record))
        return self._build_outputs(record, response.value,
                                   llm=[response.usage])

    def process_batch(
        self, records: Sequence[DataRecord]
    ) -> List[List[DataRecord]]:
        assert self._client is not None, "operator not opened"
        responses = self._client.extract_batch(
            [self._request_for(record) for record in records]
        )
        return [
            self._build_outputs(record, response.value,
                                llm=[response.usage])
            for record, response in zip(records, responses)
        ]

    def naive_estimates(self, stream: StreamEstimate) -> OperatorCostEstimates:
        fields = self.convert.new_fields
        input_tokens = (
            int(stream.avg_document_tokens * self.context_fraction)
            + _INSTRUCTION_TOKENS
            + 12 * len(fields)
        )
        output_tokens = estimate_output_tokens_for_fields(
            fields, instances=int(round(self._estimate_fanout()))
        )
        error = quality_model.error_probability(
            self.model, DEFAULT_DIFFICULTY_PRIOR, self.context_fraction
        )
        return OperatorCostEstimates(
            cardinality=stream.cardinality * self._estimate_fanout(),
            time_per_record=self.model.latency_seconds(
                input_tokens, output_tokens
            ),
            cost_per_record=self.model.cost_usd(input_tokens, output_tokens),
            quality=1.0 - error,
        )


class LLMConvertConventional(LLMConvertBonded):
    """One extraction call per new field.

    One-to-many converts cannot be decomposed per field (the instances must
    be produced together), so this strategy first asks for the instance list
    (one call) and then refines each field (one call per field) — the cost
    model reflects the extra calls either way.
    """

    strategy = "LLMConvertConventional"

    def _effective_model(self) -> ModelCard:
        bonus = min(1.0, self.model.quality + CONVENTIONAL_QUALITY_BONUS)
        return self.model.with_quality(bonus)

    def process(self, record: DataRecord) -> List[DataRecord]:
        assert self._client is not None, "operator not opened"
        document = self._document_for(record)
        one_to_many = self.convert.cardinality is Cardinality.ONE_TO_MANY
        operation = f"convert:{self.convert.output_schema.schema_name()}"
        if one_to_many:
            response = self._client.extract(
                ExtractionRequest(
                    fields=self._new_field_descriptions,
                    document=document,
                    schema_description=self.convert.desc,
                    one_to_many=True,
                    operation=operation,
                )
            )
            payload = response.value
            usages = [response.usage]
            # Refinement passes, one per field (charged, same answers —
            # the bonus quality is already baked into the effective model).
            for name, desc in self._new_field_descriptions.items():
                refine = self._client.extract(
                    ExtractionRequest(
                        fields={name: desc},
                        document=document,
                        schema_description=self.convert.desc,
                        operation=operation,
                    )
                )
                usages.append(refine.usage)
            return self._build_outputs(record, payload, llm=usages)

        merged: Dict[str, Any] = {}
        usages = []
        for name, desc in self._new_field_descriptions.items():
            response = self._client.extract(
                ExtractionRequest(
                    fields={name: desc},
                    document=document,
                    schema_description=self.convert.desc,
                    operation=operation,
                )
            )
            merged.update(response.value)
            usages.append(response.usage)
        return self._build_outputs(record, merged, llm=usages)

    async def aprocess(self, record: DataRecord) -> List[DataRecord]:
        # Several dependent calls per record; the bonded parent's
        # single-call coroutine would be wrong here.  The sync path runs
        # atomically on the loop thread, which is all the executor needs.
        return self.process(record)

    def process_batch(
        self, records: Sequence[DataRecord]
    ) -> List[List[DataRecord]]:
        assert self._client is not None, "operator not opened"
        documents = [self._document_for(record) for record in records]
        operation = f"convert:{self.convert.output_schema.schema_name()}"
        if self.convert.cardinality is Cardinality.ONE_TO_MANY:
            # Same calls as the per-record loop, grouped call-kind-major:
            # the instance batch first, then one refinement batch per field.
            # Answers are pure functions of (model, document, task), so the
            # reordering cannot change any payload — only which calls share
            # a prompt prefix and amortize the per-call overhead.
            responses = self._client.extract_batch(
                [
                    ExtractionRequest(
                        fields=self._new_field_descriptions,
                        document=document,
                        schema_description=self.convert.desc,
                        one_to_many=True,
                        operation=operation,
                    )
                    for document in documents
                ]
            )
            refinements = []
            for name, desc in self._new_field_descriptions.items():
                refinements.append(self._client.extract_batch(
                    [
                        ExtractionRequest(
                            fields={name: desc},
                            document=document,
                            schema_description=self.convert.desc,
                            operation=operation,
                        )
                        for document in documents
                    ]
                ))
            return [
                self._build_outputs(
                    record, response.value,
                    llm=[response.usage] + [batch[i].usage
                                            for batch in refinements],
                )
                for i, (record, response) in enumerate(
                    zip(records, responses))
            ]
        merged: List[Dict[str, Any]] = [{} for _ in records]
        usages: List[List[Any]] = [[] for _ in records]
        # Field-major batching: same calls as the per-record loop (one per
        # record per field), but every field's batch shares one prompt
        # prefix and all calls after the first amortize the call overhead.
        for name, desc in self._new_field_descriptions.items():
            responses = self._client.extract_batch(
                [
                    ExtractionRequest(
                        fields={name: desc},
                        document=document,
                        schema_description=self.convert.desc,
                        operation=operation,
                    )
                    for document in documents
                ]
            )
            for row, used, response in zip(merged, usages, responses):
                row.update(response.value)
                used.append(response.usage)
        return [
            self._build_outputs(record, row, llm=used)
            for record, row, used in zip(records, merged, usages)
        ]

    def naive_estimates(self, stream: StreamEstimate) -> OperatorCostEstimates:
        fields = self.convert.new_fields
        calls = max(1, len(fields)) + (
            1 if self.convert.cardinality is Cardinality.ONE_TO_MANY else 0
        )
        input_tokens_per_call = (
            int(stream.avg_document_tokens) + _INSTRUCTION_TOKENS + 12
        )
        output_tokens_per_call = estimate_output_tokens_for_fields([fields[0]])
        error = quality_model.error_probability(
            self._effective_model(), DEFAULT_DIFFICULTY_PRIOR, 1.0
        )
        return OperatorCostEstimates(
            cardinality=stream.cardinality * self._estimate_fanout(),
            time_per_record=calls * self.model.latency_seconds(
                input_tokens_per_call, output_tokens_per_call
            ),
            cost_per_record=calls * self.model.cost_usd(
                input_tokens_per_call, output_tokens_per_call
            ),
            quality=1.0 - error,
        )


class TokenReducedConvert(LLMConvertBonded):
    """Bonded extraction over a truncated document context."""

    strategy = "TokenReducedConvert"

    def __init__(self, logical_op: ConvertScan, model: ModelCard,
                 fraction: float = 0.5):
        super().__init__(logical_op, model)
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        self.context_fraction = fraction

    @property
    def op_label(self) -> str:
        return (
            f"{self.strategy}[{self.model.name}@{self.context_fraction:.2f}]"
        )


def synthesized_code_model(base: ModelCard) -> ModelCard:
    """The pseudo-model representing code synthesized from exemplars.

    Zero marginal price, fast, and noticeably lower quality than the model
    that synthesized it.
    """
    return ModelCard(
        name=f"code-synth({base.name})",
        provider="local",
        usd_per_1m_input=0.0,
        usd_per_1m_output=0.0,
        prefill_tokens_per_second=200_000.0,
        decode_tokens_per_second=100_000.0,
        overhead_seconds=0.002,
        quality=max(0.35, round(base.quality - 0.22, 4)),
        context_window=base.context_window,
    )


class CodeSynthesisConvert(_ConvertBase):
    """Exemplar-then-code extraction.

    The first ``exemplars`` records run through a bonded LLM extraction
    (full price).  After that, a synthesized extractor — simulated as the
    deterministic heuristic engine at a reduced quality tier — handles the
    rest at near-zero cost.
    """

    strategy = "CodeSynthesisConvert"
    EXEMPLARS = 3

    def __init__(self, logical_op: ConvertScan, model: ModelCard):
        if not logical_op.is_semantic:
            raise ValueError("LLM converts require a semantic ConvertScan")
        super().__init__(logical_op, model=model)
        self._llm_client: Optional[SimulatedLLMClient] = None
        self._code_client: Optional[SimulatedLLMClient] = None
        self._seen = 0

    def open(self, context: ExecutionContext) -> None:
        super().open(context)
        self._llm_client = SimulatedLLMClient(
            self.model,
            clock=context.clock,
            ledger=context.ledger,
            oracle=context.oracle,
            registry=context.models,
            cache=context.cache,
            tracer=context.tracer,
            replay=context.replay,
        )
        self._code_client = SimulatedLLMClient(
            synthesized_code_model(self.model),
            clock=context.clock,
            ledger=context.ledger,
            oracle=context.oracle,
            registry=context.models,
            cache=context.cache,
            tracer=context.tracer,
            replay=context.replay,
        )
        self._seen = 0

    def process(self, record: DataRecord) -> List[DataRecord]:
        assert self._llm_client and self._code_client, "operator not opened"
        client = (
            self._llm_client if self._seen < self.EXEMPLARS
            else self._code_client
        )
        self._seen += 1
        response = client.extract(
            ExtractionRequest(
                fields=self._new_field_descriptions,
                document=self._document_for(record),
                schema_description=self.convert.desc,
                one_to_many=(
                    self.convert.cardinality is Cardinality.ONE_TO_MANY
                ),
                operation=(
                    f"convert:{self.convert.output_schema.schema_name()}"
                ),
            )
        )
        return self._build_outputs(record, response.value,
                                   llm=[response.usage])

    def naive_estimates(self, stream: StreamEstimate) -> OperatorCostEstimates:
        fields = self.convert.new_fields
        input_tokens = (
            int(stream.avg_document_tokens) + _INSTRUCTION_TOKENS
            + 12 * len(fields)
        )
        output_tokens = estimate_output_tokens_for_fields(
            fields, instances=int(round(self._estimate_fanout()))
        )
        n = max(stream.cardinality, 1.0)
        llm_share = min(1.0, self.EXEMPLARS / n)
        code = synthesized_code_model(self.model)
        time = (
            llm_share * self.model.latency_seconds(input_tokens, output_tokens)
            + (1 - llm_share) * code.latency_seconds(input_tokens, output_tokens)
        )
        cost = llm_share * self.model.cost_usd(input_tokens, output_tokens)
        llm_error = quality_model.error_probability(
            self.model, DEFAULT_DIFFICULTY_PRIOR, 1.0
        )
        code_error = quality_model.error_probability(
            code, DEFAULT_DIFFICULTY_PRIOR, 1.0
        )
        blended_quality = (
            llm_share * (1 - llm_error) + (1 - llm_share) * (1 - code_error)
        )
        return OperatorCostEstimates(
            cardinality=stream.cardinality * self._estimate_fanout(),
            time_per_record=time,
            cost_per_record=cost,
            quality=blended_quality,
        )


class ChunkedConvert(_ConvertBase):
    """Map-reduce extraction for documents that exceed the context window.

    The document splits into chunks that fit the model; each chunk runs a
    bonded extraction, and the per-chunk answers merge: one-to-many
    extractions concatenate (deduplicated), one-to-one extractions take the
    first non-null value per field.  This is the only strategy the planner
    offers for a (model, document-size) combination where a single call
    would overflow the window.
    """

    strategy = "ChunkedConvert"

    #: Share of the context window given to document text per chunk (the
    #: rest is instruction overhead and safety margin).
    WINDOW_SHARE = 0.5

    #: Quality penalty for merging per-chunk answers (cross-chunk context
    #: is lost).
    MERGE_QUALITY_FACTOR = 0.95

    def __init__(self, logical_op: ConvertScan, model: ModelCard,
                 chunk_tokens: Optional[int] = None):
        if not logical_op.is_semantic:
            raise ValueError("LLM converts require a semantic ConvertScan")
        super().__init__(logical_op, model=model)
        if chunk_tokens is None:
            # The whole prompt (chunk + instructions + field list + answer
            # margin) must fit the window, even for very small windows.
            overhead = (
                _INSTRUCTION_TOKENS
                + 12 * len(logical_op.new_fields)
                + 40
            )
            budget = min(
                int(model.context_window * self.WINDOW_SHARE),
                model.context_window - overhead,
            )
            chunk_tokens = max(8, budget)
        self.chunk_tokens = chunk_tokens
        self._client: Optional[SimulatedLLMClient] = None

    @property
    def op_label(self) -> str:
        return f"{self.strategy}[{self.model.name}@{self.chunk_tokens}t]"

    def open(self, context: ExecutionContext) -> None:
        super().open(context)
        self._client = SimulatedLLMClient(
            self.model,
            clock=context.clock,
            ledger=context.ledger,
            oracle=context.oracle,
            registry=context.models,
            cache=context.cache,
            tracer=context.tracer,
            replay=context.replay,
        )

    def _extract_chunk(self, chunk: str):
        return self._client.extract(
            ExtractionRequest(
                fields=self._new_field_descriptions,
                document=chunk,
                schema_description=self.convert.desc,
                one_to_many=(
                    self.convert.cardinality is Cardinality.ONE_TO_MANY
                ),
                operation=(
                    f"convert:{self.convert.output_schema.schema_name()}"
                ),
            )
        )

    def process(self, record: DataRecord) -> List[DataRecord]:
        assert self._client is not None, "operator not opened"
        from repro.llm.tokenizer import split_into_token_chunks
        import json as _json

        chunks = split_into_token_chunks(
            self._document_for(record), self.chunk_tokens
        )
        if self.convert.cardinality is Cardinality.ONE_TO_MANY:
            merged: List[Dict[str, Any]] = []
            seen = set()
            usages = []
            for chunk in chunks:
                response = self._extract_chunk(chunk)
                usages.append(response.usage)
                rows = response.value
                for row in rows if isinstance(rows, list) else [rows]:
                    if not isinstance(row, dict):
                        continue
                    key = _json.dumps(row, default=str, sort_keys=True)
                    if key not in seen:
                        seen.add(key)
                        merged.append(row)
            return self._build_outputs(record, merged, llm=usages)

        combined: Dict[str, Any] = {}
        usages = []
        for chunk in chunks:
            response = self._extract_chunk(chunk)
            usages.append(response.usage)
            payload = response.value
            if isinstance(payload, list):
                payload = payload[0] if payload else {}
            for name, value in payload.items():
                if combined.get(name) is None and value is not None:
                    combined[name] = value
            if all(combined.get(n) is not None
                   for n in self.convert.new_fields):
                break  # all fields found; skip remaining chunks
        return self._build_outputs(record, combined, llm=usages)

    def naive_estimates(self, stream: StreamEstimate) -> OperatorCostEstimates:
        fields = self.convert.new_fields
        n_chunks = max(
            1.0, stream.avg_document_tokens / float(self.chunk_tokens)
        )
        input_tokens = self.chunk_tokens + _INSTRUCTION_TOKENS + 12 * len(fields)
        output_tokens = estimate_output_tokens_for_fields(
            fields, instances=int(round(self._estimate_fanout()))
        )
        error = quality_model.error_probability(
            self.model, DEFAULT_DIFFICULTY_PRIOR, 1.0
        )
        return OperatorCostEstimates(
            cardinality=stream.cardinality * self._estimate_fanout(),
            time_per_record=n_chunks * self.model.latency_seconds(
                input_tokens, output_tokens
            ),
            cost_per_record=n_chunks * self.model.cost_usd(
                input_tokens, output_tokens
            ),
            quality=(1.0 - error) * self.MERGE_QUALITY_FACTOR,
        )
