"""Physical operator base classes and cost-estimate dataclasses."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.core.logical import LogicalOperator
from repro.core.records import DataRecord
from repro.llm.models import ModelCard
from repro.physical.context import ExecutionContext

#: CPU time we charge per non-LLM record operation (parsing, UDFs, ...).
LOCAL_OP_SECONDS = 0.001


@dataclass(frozen=True)
class StreamEstimate:
    """What the cost model believes about a record stream at a plan point."""

    cardinality: float
    avg_document_tokens: float

    def scaled(self, selectivity: float = 1.0,
               fanout: float = 1.0) -> "StreamEstimate":
        return StreamEstimate(
            cardinality=self.cardinality * selectivity * fanout,
            avg_document_tokens=self.avg_document_tokens,
        )


@dataclass(frozen=True)
class OperatorCostEstimates:
    """Per-operator estimates used by the optimizer.

    ``cardinality`` is the *output* cardinality given the estimated input;
    ``time_per_record`` / ``cost_per_record`` are per *input* record;
    ``quality`` is the probability the operator's decision/extraction is
    correct for one record (1.0 for conventional relational operators).
    """

    cardinality: float
    time_per_record: float
    cost_per_record: float
    quality: float

    def total_time(self, input_cardinality: float) -> float:
        return self.time_per_record * input_cardinality

    def total_cost(self, input_cardinality: float) -> float:
        return self.cost_per_record * input_cardinality


class PhysicalOperator:
    """An executable implementation of one logical operator.

    Lifecycle: the executor calls :meth:`open` once with the run's context,
    then :meth:`process` per input record (returning zero or more outputs),
    then :meth:`close` (streaming operators return ``[]``; blocking operators
    flush their buffered results there).
    """

    #: Display name of the implementation strategy, e.g. ``"LLMFilter"``.
    strategy: str = "Physical"

    def __init__(self, logical_op: LogicalOperator,
                 model: Optional[ModelCard] = None):
        self.logical_op = logical_op
        self.model = model
        self._context: Optional[ExecutionContext] = None

    # -- identity --------------------------------------------------------

    @property
    def op_label(self) -> str:
        """Display label, e.g. ``LLMFilter[gpt-4o]``."""
        suffix = f"[{self.model.name}]" if self.model else ""
        return f"{self.strategy}{suffix}"

    @property
    def full_op_id(self) -> str:
        # Memoized: the logical signature is stable for an operator's
        # lifetime and the id is recomputed on every cost-model lookup.
        cached = self.__dict__.get("_full_op_id")
        if cached is None:
            cached = f"{self.logical_op.signature()}:{self.op_label}"
            self.__dict__["_full_op_id"] = cached
        return cached

    @property
    def is_llm_op(self) -> bool:
        return self.model is not None and not self.model.is_embedding_model

    # -- lifecycle ---------------------------------------------------------

    def open(self, context: ExecutionContext) -> None:
        self._context = context

    @property
    def context(self) -> ExecutionContext:
        if self._context is None:
            raise RuntimeError(
                f"{self.op_label} was not opened with an ExecutionContext"
            )
        return self._context

    @property
    def provenance(self):
        """The run's provenance recorder (NULL_PROVENANCE when off)."""
        return self.context.provenance

    def process(self, record: DataRecord) -> List[DataRecord]:
        raise NotImplementedError

    async def aprocess(self, record: DataRecord) -> List[DataRecord]:
        """Asynchronous twin of :meth:`process` for the async executor.

        Contract: identical outputs, clock charges, and ledger entries as
        :meth:`process`.  The default simply delegates; LLM-bound operators
        override it to await the client's coroutine API.  Overrides must
        never suspend mid-record — the executor relies on each record's
        accounting being atomic on the event-loop thread.
        """
        return self.process(record)

    def process_batch(
        self, records: Sequence[DataRecord]
    ) -> List[List[DataRecord]]:
        """Process ``records`` together; one output list per input record.

        Contract: the outputs (and any LLM answers behind them) must be
        identical to calling :meth:`process` once per record, in order.
        The default does exactly that; LLM-bound operators override it to
        batch their client calls, which amortizes prompt construction,
        prefix token counting, and per-call overhead across the batch.
        """
        return [self.process(record) for record in records]

    def close(self) -> List[DataRecord]:
        return []

    @property
    def is_blocking(self) -> bool:
        return False

    # -- cost estimation -------------------------------------------------

    def naive_estimates(self, stream: StreamEstimate) -> OperatorCostEstimates:
        """Model-card-based estimates, before any sampling evidence."""
        raise NotImplementedError

    def _charge_local_time(self, seconds: float = LOCAL_OP_SECONDS) -> None:
        """Advance the clock for non-LLM work."""
        self.context.clock.advance(seconds)

    def __repr__(self) -> str:
        return f"<{self.op_label} for {self.logical_op.describe()}>"


class BlockingPhysicalOperator(PhysicalOperator):
    """An operator that must see all input before emitting output."""

    #: Per-record fold cost when the fold is *decomposable*: the charge is a
    #: record-independent constant and the folded state does not depend on
    #: arrival order (or the op restores order itself at close).  Scale-out
    #: executors then pay this charge shard-locally in parallel and replay
    #: only the cheap state mutation (:meth:`accumulate_silent`) in global
    #: order at the gather barrier.  ``None`` (the default) means the fold
    #: is not decomposable and must run entirely post-gather.
    accumulate_seconds: Optional[float] = None

    @property
    def is_blocking(self) -> bool:
        return True

    def process(self, record: DataRecord) -> List[DataRecord]:
        self.accumulate(record)
        return []

    def accumulate(self, record: DataRecord) -> None:
        raise NotImplementedError

    def accumulate_silent(self, record: DataRecord) -> None:
        """Fold ``record`` into state without charging the clock.

        Only meaningful when :attr:`accumulate_seconds` is set; decomposable
        operators implement ``accumulate`` as a time charge followed by this
        mutation so executors can split the two across threads.
        """
        raise NotImplementedError

    def close(self) -> List[DataRecord]:
        raise NotImplementedError
