"""Union, distinct, and sort physical operators."""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.core.logical_ext import Distinct, Sort, UnionScan
from repro.core.records import DataRecord
from repro.obs.provenance import DropReason
from repro.physical.base import (
    BlockingPhysicalOperator,
    OperatorCostEstimates,
    PhysicalOperator,
    StreamEstimate,
)
from repro.physical.context import ExecutionContext


class UnionOp(PhysicalOperator):
    """Stream the left side through; append the materialized right side
    when the stream closes."""

    strategy = "Union"

    def __init__(self, logical_op: UnionScan):
        super().__init__(logical_op)
        self.union: UnionScan = logical_op

    def process(self, record: DataRecord) -> List[DataRecord]:
        # Pure pass-through of the left stream: no provenance event —
        # the record's graph node is unchanged and nothing is decided.
        return [record]

    def close(self) -> List[DataRecord]:
        from repro.physical.joins import _materialize_right

        appended = _materialize_right(self.union, self.context)
        prov = self.provenance
        if prov.enabled:
            for record in appended:
                prov.source(record, origin="union.right")
        return appended

    def naive_estimates(self, stream: StreamEstimate) -> OperatorCostEstimates:
        try:
            right_n = float(len(self.union.right_dataset.source))
        except TypeError:  # pragma: no cover
            right_n = 10.0
        return OperatorCostEstimates(
            cardinality=stream.cardinality + right_n,
            time_per_record=0.0001,
            cost_per_record=0.0,
            quality=1.0,
        )


def _distinct_key(record: DataRecord, fields) -> str:
    names = fields or record.schema.field_names()
    return json.dumps(
        {name: record.get(name) for name in names},
        default=str, sort_keys=True,
    )


class DistinctOp(PhysicalOperator):
    """Streaming duplicate elimination by a hash of the key fields."""

    strategy = "Distinct"

    def __init__(self, logical_op: Distinct):
        super().__init__(logical_op)
        self.distinct: Distinct = logical_op
        # key -> the record id of the kept (first) occurrence, so a
        # duplicate's drop event can name which record shadowed it.
        self._seen: Dict[str, int] = {}

    def open(self, context: ExecutionContext) -> None:
        super().open(context)
        self._seen = {}

    def process(self, record: DataRecord) -> List[DataRecord]:
        self._charge_local_time(0.0001)
        key = _distinct_key(record, self.distinct.fields)
        prov = self.provenance
        kept = self._seen.get(key)
        if kept is not None:
            if prov.enabled:
                prov.drop(self, record, DropReason.DISTINCT_DUPLICATE,
                          duplicate_of=kept)
            return []
        self._seen[key] = record.record_id
        if prov.enabled:
            prov.emit(self, [record], [record], first_occurrence=True)
        return [record]

    def naive_estimates(self, stream: StreamEstimate) -> OperatorCostEstimates:
        # Assume mild duplication by default.
        return OperatorCostEstimates(
            cardinality=stream.cardinality * 0.9,
            time_per_record=0.0001,
            cost_per_record=0.0,
            quality=1.0,
        )


class SortOp(BlockingPhysicalOperator):
    """Blocking sort by one field (None values last, stable)."""

    strategy = "Sort"

    def __init__(self, logical_op: Sort):
        super().__init__(logical_op)
        self.sort: Sort = logical_op
        self._buffer: List[DataRecord] = []

    def open(self, context: ExecutionContext) -> None:
        super().open(context)
        self._buffer = []

    def accumulate(self, record: DataRecord) -> None:
        self._charge_local_time(0.0001)
        self._buffer.append(record)

    @staticmethod
    def _sort_key(value) -> Tuple[int, object]:
        if value is None:
            return (2, "")
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return (0, value)
        return (1, str(value))

    def close(self) -> List[DataRecord]:
        # Pure reordering: every input survives unchanged, so the sort
        # emits no provenance events (the graph is order-free; sink
        # order is captured by the graph's output_ids).
        ordered = sorted(
            self._buffer,
            key=lambda r: self._sort_key(r.get(self.sort.field)),
            reverse=self.sort.descending,
        )
        if self.sort.descending:
            # Keep None values last even when descending.
            non_null = [r for r in ordered if r.get(self.sort.field) is not None]
            nulls = [r for r in ordered if r.get(self.sort.field) is None]
            ordered = non_null + nulls
        return ordered

    def naive_estimates(self, stream: StreamEstimate) -> OperatorCostEstimates:
        return OperatorCostEstimates(
            cardinality=stream.cardinality,
            time_per_record=0.0002,
            cost_per_record=0.0,
            quality=1.0,
        )
