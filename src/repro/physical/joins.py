"""Physical join implementations.

All joins materialize the right-hand :class:`~repro.core.dataset.Dataset`
when the operator opens: the right sub-pipeline is optimized (MaxQuality,
naive estimates) and executed against the *same* execution context, so its
LLM calls, cost, and simulated time are accounted to the join operator.

Three implementations span the usual trade-off spectrum:

* :class:`NestedLoopUDFJoin` — a Python pair predicate; free.
* :class:`LLMSemanticJoin` — one model call per (left, right) pair; the
  most faithful and the most expensive (quadratic calls).
* :class:`EmbeddingBlockedJoin` — block with embedding similarity first and
  only ask the model about the top-``block_size`` most similar right
  records per left record; cheaper, slightly lossier.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.logical_ext import JoinScan
from repro.core.records import DataRecord
from repro.llm import quality as quality_model
from repro.llm.client import BooleanRequest, SimulatedLLMClient
from repro.llm.embeddings import EmbeddingModel, cosine_similarity
from repro.llm.models import ModelCard
from repro.obs.provenance import DropReason
from repro.physical.base import (
    OperatorCostEstimates,
    PhysicalOperator,
    StreamEstimate,
)
from repro.physical.context import ExecutionContext

#: Default selectivity of a join predicate over random pairs.
DEFAULT_JOIN_SELECTIVITY = 0.1


def _materialize_right(join, context: ExecutionContext):
    """Optimize + execute the right dataset inside ``context``.

    Provenance is suspended for the nested run: its operators and
    records belong to the join's internal sub-pipeline, not the outer
    plan's graph — the finished right records enter the graph as
    ``join.right`` / ``union.right`` roots instead.
    """
    from repro.execution.executors import SequentialExecutor
    from repro.optimizer.optimizer import Optimizer

    with context.provenance.suspended():
        report = Optimizer(models=context.models).optimize(
            join.right_dataset.logical_plan(), join.right_dataset.source
        )
        executor = SequentialExecutor(context)
        records, _ = executor.execute(report.chosen.plan)
    return records


def _merge(join: JoinScan, left: DataRecord,
           right: DataRecord) -> DataRecord:
    values = {}
    left_fields = set(left.schema.field_map())
    for name in right.schema.field_map():
        target = name if name not in left_fields else f"right_{name}"
        values[target] = right.get(name)
    return left.derive(join.output_schema, values, extra_parents=(right,))


class _JoinBase(PhysicalOperator):
    def __init__(self, logical_op: JoinScan,
                 model: Optional[ModelCard] = None):
        super().__init__(logical_op, model=model)
        self.join: JoinScan = logical_op
        self._right: List[DataRecord] = []
        self._matched_right_ids: set = set()

    def open(self, context: ExecutionContext) -> None:
        super().open(context)
        self._right = _materialize_right(self.join, context)
        self._matched_right_ids = set()
        if context.provenance.enabled:
            for right in self._right:
                context.provenance.source(right, origin="join.right")

    def _note_match(self, left: DataRecord, right: DataRecord,
                    merged: DataRecord, llm=None, **attrs) -> None:
        prov = self.provenance
        if prov.enabled:
            prov.emit(self, [left, right], [merged], llm=llm, **attrs)
            self._matched_right_ids.add(right.record_id)

    def _note_left_unmatched(self, left: DataRecord, judged: int,
                             llm=None, **attrs) -> None:
        prov = self.provenance
        if prov.enabled:
            prov.drop(self, left, DropReason.JOIN_NO_MATCH, llm=llm,
                      pairs_judged=judged, **attrs)

    def close(self) -> List[DataRecord]:
        prov = self.provenance
        if prov.enabled:
            for right in self._right:
                if right.record_id not in self._matched_right_ids:
                    prov.drop(self, right, DropReason.JOIN_NO_MATCH,
                              side="right")
        return []

    def _right_profile_cardinality(self) -> float:
        try:
            return float(len(self.join.right_dataset.source))
        except TypeError:  # pragma: no cover - unsized custom sources
            return 10.0


class NestedLoopUDFJoin(_JoinBase):
    """Pair UDF evaluated over the cross product."""

    strategy = "NestedLoopUDFJoin"

    def __init__(self, logical_op: JoinScan):
        if logical_op.udf is None:
            raise ValueError("NestedLoopUDFJoin requires a UDF join")
        super().__init__(logical_op)

    def process(self, record: DataRecord) -> List[DataRecord]:
        out = []
        for right in self._right:
            self._charge_local_time(0.0001)
            if self.join.udf(record, right):
                merged = _merge(self.join, record, right)
                self._note_match(record, right, merged, verdict=True)
                out.append(merged)
        if not out:
            self._note_left_unmatched(record, judged=len(self._right))
        return out

    def naive_estimates(self, stream: StreamEstimate) -> OperatorCostEstimates:
        right_n = self._right_profile_cardinality()
        return OperatorCostEstimates(
            cardinality=stream.cardinality * right_n * DEFAULT_JOIN_SELECTIVITY,
            time_per_record=0.0001 * right_n,
            cost_per_record=0.0,
            quality=1.0,
        )


class LLMSemanticJoin(_JoinBase):
    """Ask the model to judge the predicate for every pair."""

    strategy = "LLMSemanticJoin"

    def __init__(self, logical_op: JoinScan, model: ModelCard):
        if logical_op.predicate is None:
            raise ValueError("LLMSemanticJoin requires an NL predicate")
        super().__init__(logical_op, model=model)
        self._client: Optional[SimulatedLLMClient] = None

    def open(self, context: ExecutionContext) -> None:
        super().open(context)
        self._client = SimulatedLLMClient(
            self.model,
            clock=context.clock,
            ledger=context.ledger,
            oracle=context.oracle,
            registry=context.models,
            cache=context.cache,
            tracer=context.tracer,
            replay=context.replay,
        )

    def _pair_matches(self, left: DataRecord, right: DataRecord):
        """Judge one pair; returns the full response (``.value`` is the
        verdict, ``.usage`` the call's accounting for provenance)."""
        document = (
            f"LEFT RECORD:\n{left.document_text()}\n\n"
            f"RIGHT RECORD:\n{right.document_text()}"
        )
        return self._client.judge(
            BooleanRequest(
                predicate=self.join.predicate,
                document=document,
                operation=f"join:{self.join.predicate[:40]}",
            )
        )

    def process(self, record: DataRecord) -> List[DataRecord]:
        assert self._client is not None, "operator not opened"
        out = []
        unmatched_usages = []
        for right in self._right:
            response = self._pair_matches(record, right)
            if response.value:
                merged = _merge(self.join, record, right)
                self._note_match(record, right, merged,
                                 llm=[response.usage], verdict=True)
                out.append(merged)
            else:
                unmatched_usages.append(response.usage)
        if not out:
            self._note_left_unmatched(record, judged=len(self._right),
                                      llm=unmatched_usages, verdict=False)
        return out

    def naive_estimates(self, stream: StreamEstimate) -> OperatorCostEstimates:
        right_n = self._right_profile_cardinality()
        pair_tokens = int(stream.avg_document_tokens * 2) + 80
        per_pair_cost = self.model.cost_usd(pair_tokens, 1)
        per_pair_time = self.model.latency_seconds(pair_tokens, 1)
        error = quality_model.error_probability(self.model, 0.35, 1.0)
        return OperatorCostEstimates(
            cardinality=stream.cardinality * right_n * DEFAULT_JOIN_SELECTIVITY,
            time_per_record=per_pair_time * right_n,
            cost_per_record=per_pair_cost * right_n,
            quality=1.0 - error,
        )


class EmbeddingBlockedJoin(LLMSemanticJoin):
    """Embedding blocking, then model judgments on the top-k block."""

    strategy = "EmbeddingBlockedJoin"
    BLOCK_SIZE = 3
    BLOCKING_RECALL = 0.9  # estimated share of true pairs inside the block

    def __init__(self, logical_op: JoinScan, model: ModelCard,
                 embedding_model: ModelCard):
        super().__init__(logical_op, model)
        self.embedding_model = embedding_model
        self._embedder: Optional[EmbeddingModel] = None
        self._right_vectors = []

    @property
    def op_label(self) -> str:
        return f"{self.strategy}[{self.model.name}]"

    def open(self, context: ExecutionContext) -> None:
        super().open(context)
        self._embedder = EmbeddingModel(
            model=self.embedding_model,
            clock=context.clock,
            ledger=context.ledger,
            cache=context.cache,
        )
        self._right_vectors = [
            self._embedder.embed(r.document_text(), operation="join-embed")
            for r in self._right
        ]

    def process(self, record: DataRecord) -> List[DataRecord]:
        assert self._client and self._embedder, "operator not opened"
        left_vector = self._embedder.embed(
            record.document_text(), operation="join-embed"
        )
        scored = sorted(
            (
                (cosine_similarity(left_vector, vector), index)
                for index, vector in enumerate(self._right_vectors)
            ),
            key=lambda pair: (-pair[0], pair[1]),
        )
        out = []
        unmatched_usages = []
        for similarity, index in scored[: self.BLOCK_SIZE]:
            right = self._right[index]
            response = self._pair_matches(record, right)
            if response.value:
                merged = _merge(self.join, record, right)
                self._note_match(record, right, merged,
                                 llm=[response.usage], verdict=True,
                                 similarity=round(similarity, 9))
                out.append(merged)
            else:
                unmatched_usages.append(response.usage)
        if not out:
            self._note_left_unmatched(
                record, judged=min(len(scored), self.BLOCK_SIZE),
                llm=unmatched_usages, verdict=False,
                block_size=self.BLOCK_SIZE)
        return out

    def naive_estimates(self, stream: StreamEstimate) -> OperatorCostEstimates:
        right_n = self._right_profile_cardinality()
        judged = min(right_n, float(self.BLOCK_SIZE))
        pair_tokens = int(stream.avg_document_tokens * 2) + 80
        embed_cost = self.embedding_model.cost_usd(
            int(stream.avg_document_tokens), 0
        )
        per_record_cost = (
            judged * self.model.cost_usd(pair_tokens, 1) + embed_cost
        )
        per_record_time = (
            judged * self.model.latency_seconds(pair_tokens, 1)
            + self.embedding_model.latency_seconds(
                int(stream.avg_document_tokens), 0
            )
        )
        error = quality_model.error_probability(self.model, 0.35, 1.0)
        return OperatorCostEstimates(
            cardinality=(
                stream.cardinality * right_n * DEFAULT_JOIN_SELECTIVITY
                * self.BLOCKING_RECALL
            ),
            time_per_record=per_record_time,
            cost_per_record=per_record_cost,
            quality=(1.0 - error) * self.BLOCKING_RECALL,
        )
