"""Physical implementations of the *Filter* logical operator.

Three families, spanning the quality/cost spectrum:

* :class:`NonLLMFilter` — a Python UDF; free and assumed correct.
* :class:`LLMFilter` — ask a model to judge the natural-language predicate;
  one instance per registered model.
* :class:`EmbeddingFilter` — embed the predicate and the document and
  threshold their cosine similarity; orders of magnitude cheaper than an LLM
  call but noticeably less accurate.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.logical import FilteredScan
from repro.core.records import DataRecord
from repro.llm import quality as quality_model
from repro.llm.client import BooleanRequest, SimulatedLLMClient
from repro.llm.embeddings import EmbeddingModel, cosine_similarity
from repro.llm.models import ModelCard
from repro.obs.provenance import DropReason
from repro.physical.base import (
    OperatorCostEstimates,
    PhysicalOperator,
    StreamEstimate,
)
from repro.physical.context import ExecutionContext

#: Default selectivity assumed for a semantic predicate before sampling.
DEFAULT_FILTER_SELECTIVITY = 0.5

#: Difficulty prior used for quality estimates before sampling.
DEFAULT_DIFFICULTY_PRIOR = 0.35

#: Output tokens of a TRUE/FALSE judgment.
_JUDGMENT_OUTPUT_TOKENS = 1


class NonLLMFilter(PhysicalOperator):
    """Apply a user-supplied Python predicate."""

    strategy = "NonLLMFilter"

    def __init__(self, logical_op: FilteredScan):
        if logical_op.spec.udf is None:
            raise ValueError("NonLLMFilter requires a UDF filter spec")
        super().__init__(logical_op)
        self._udf = logical_op.spec.udf

    def process(self, record: DataRecord) -> List[DataRecord]:
        self._charge_local_time()
        keep = bool(self._udf(record))
        prov = self.provenance
        if prov.enabled:
            if keep:
                prov.emit(self, [record], [record], verdict=True)
            else:
                prov.drop(self, record, DropReason.FILTER_REJECTED,
                          verdict=False)
        return [record] if keep else []

    def naive_estimates(self, stream: StreamEstimate) -> OperatorCostEstimates:
        return OperatorCostEstimates(
            cardinality=stream.cardinality * DEFAULT_FILTER_SELECTIVITY,
            time_per_record=0.001,
            cost_per_record=0.0,
            quality=1.0,
        )


class LLMFilter(PhysicalOperator):
    """Judge the predicate with one model call per record."""

    strategy = "LLMFilter"

    def __init__(self, logical_op: FilteredScan, model: ModelCard,
                 context_fraction: float = 1.0):
        if logical_op.spec.predicate is None:
            raise ValueError("LLMFilter requires a natural-language predicate")
        super().__init__(logical_op, model=model)
        self.predicate = logical_op.spec.predicate
        self.depends_on = list(logical_op.spec.depends_on)
        self.context_fraction = context_fraction
        self._client: Optional[SimulatedLLMClient] = None

    def open(self, context: ExecutionContext) -> None:
        super().open(context)
        self._client = SimulatedLLMClient(
            self.model,
            clock=context.clock,
            ledger=context.ledger,
            oracle=context.oracle,
            registry=context.models,
            cache=context.cache,
            tracer=context.tracer,
            replay=context.replay,
        )

    def _request_for(self, record: DataRecord) -> BooleanRequest:
        document = (
            record.fields_text(self.depends_on) if self.depends_on
            else record.document_text()
        )
        return BooleanRequest(
            predicate=self.predicate,
            document=document,
            operation=f"filter:{self.predicate[:40]}",
            context_fraction=self.context_fraction,
        )

    def _record_verdict(self, record: DataRecord, response) -> None:
        prov = self.provenance
        if not prov.enabled:
            return
        if response.value:
            prov.emit(self, [record], [record], llm=[response.usage],
                      verdict=True)
        else:
            prov.drop(self, record, DropReason.FILTER_REJECTED,
                      llm=[response.usage], verdict=False)

    def process(self, record: DataRecord) -> List[DataRecord]:
        assert self._client is not None, "operator not opened"
        response = self._client.judge(self._request_for(record))
        self._record_verdict(record, response)
        return [record] if response.value else []

    async def aprocess(self, record: DataRecord) -> List[DataRecord]:
        assert self._client is not None, "operator not opened"
        response = await self._client.ajudge(self._request_for(record))
        self._record_verdict(record, response)
        return [record] if response.value else []

    def process_batch(
        self, records: Sequence[DataRecord]
    ) -> List[List[DataRecord]]:
        assert self._client is not None, "operator not opened"
        responses = self._client.judge_batch(
            [self._request_for(record) for record in records]
        )
        for record, response in zip(records, responses):
            self._record_verdict(record, response)
        return [
            [record] if response.value else []
            for record, response in zip(records, responses)
        ]

    def naive_estimates(self, stream: StreamEstimate) -> OperatorCostEstimates:
        input_tokens = int(
            stream.avg_document_tokens * self.context_fraction
        ) + 60  # instruction overhead
        cost = self.model.cost_usd(input_tokens, _JUDGMENT_OUTPUT_TOKENS)
        time = self.model.latency_seconds(input_tokens, _JUDGMENT_OUTPUT_TOKENS)
        error = quality_model.error_probability(
            self.model, DEFAULT_DIFFICULTY_PRIOR, self.context_fraction
        )
        return OperatorCostEstimates(
            cardinality=stream.cardinality * DEFAULT_FILTER_SELECTIVITY,
            time_per_record=time,
            cost_per_record=cost,
            quality=1.0 - error,
        )


class EmbeddingFilter(PhysicalOperator):
    """Cosine-similarity thresholding against the predicate embedding.

    The cheapest semantic filter in the plan space.  It shares vocabulary
    with the predicate or it doesn't — no reasoning — so its quality estimate
    is deliberately pessimistic.
    """

    strategy = "EmbeddingFilter"

    #: Similarity threshold tuned on the bundled corpora.
    THRESHOLD = 0.08
    ESTIMATED_QUALITY = 0.68

    def __init__(self, logical_op: FilteredScan, model: ModelCard):
        if logical_op.spec.predicate is None:
            raise ValueError(
                "EmbeddingFilter requires a natural-language predicate"
            )
        super().__init__(logical_op, model=model)
        self.predicate = logical_op.spec.predicate
        self._embedder: Optional[EmbeddingModel] = None
        self._predicate_vector = None

    def open(self, context: ExecutionContext) -> None:
        super().open(context)
        self._embedder = EmbeddingModel(
            model=self.model,
            clock=context.clock,
            ledger=context.ledger,
            cache=context.cache,
        )
        self._predicate_vector = self._embedder.embed(
            self.predicate, operation="filter-embed:predicate"
        )

    def process(self, record: DataRecord) -> List[DataRecord]:
        assert self._embedder is not None, "operator not opened"
        document_vector = self._embedder.embed(
            record.document_text(),
            operation=f"filter-embed:{self.predicate[:40]}",
        )
        similarity = cosine_similarity(self._predicate_vector, document_vector)
        keep = similarity >= self.THRESHOLD
        prov = self.provenance
        if prov.enabled:
            attrs = {"similarity": round(similarity, 9),
                     "threshold": self.THRESHOLD}
            if keep:
                prov.emit(self, [record], [record], verdict=True, **attrs)
            else:
                prov.drop(self, record, DropReason.FILTER_REJECTED,
                          verdict=False, **attrs)
        return [record] if keep else []

    def naive_estimates(self, stream: StreamEstimate) -> OperatorCostEstimates:
        tokens = int(stream.avg_document_tokens)
        return OperatorCostEstimates(
            cardinality=stream.cardinality * DEFAULT_FILTER_SELECTIVITY,
            time_per_record=self.model.latency_seconds(tokens, 0),
            cost_per_record=self.model.cost_usd(tokens, 0),
            quality=self.ESTIMATED_QUALITY,
        )
