"""Semantic top-k retrieval: embed everything, keep the k nearest."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.logical import RetrieveScan
from repro.core.records import DataRecord
from repro.llm.embeddings import EmbeddingModel, cosine_similarity
from repro.llm.models import ModelCard
from repro.obs.provenance import DropReason
from repro.physical.base import (
    BlockingPhysicalOperator,
    OperatorCostEstimates,
    StreamEstimate,
)
from repro.physical.context import ExecutionContext


class RetrieveOp(BlockingPhysicalOperator):
    """Blocking top-k by cosine similarity to the query embedding."""

    strategy = "Retrieve"
    ESTIMATED_QUALITY = 0.75

    def __init__(self, logical_op: RetrieveScan, model: ModelCard):
        super().__init__(logical_op, model=model)
        self.retrieve: RetrieveScan = logical_op
        self._embedder: Optional[EmbeddingModel] = None
        self._query_vector = None
        self._scored: List[Tuple[float, int, DataRecord]] = []

    def open(self, context: ExecutionContext) -> None:
        super().open(context)
        self._embedder = EmbeddingModel(
            model=self.model, clock=context.clock, ledger=context.ledger,
            cache=context.cache,
        )
        self._query_vector = self._embedder.embed(
            self.retrieve.query, operation="retrieve:query"
        )
        self._scored = []

    def accumulate(self, record: DataRecord) -> None:
        assert self._embedder is not None, "operator not opened"
        vector = self._embedder.embed(
            record.document_text(), operation="retrieve:document"
        )
        score = cosine_similarity(self._query_vector, vector)
        # Arrival index breaks score ties deterministically.  (Not the
        # global record_id: ids are assigned at derive time, so their order
        # depends on thread interleaving under the pipelined executor,
        # while arrival order at a barrier is the same for every executor.)
        self._scored.append((score, len(self._scored), record))

    def close(self) -> List[DataRecord]:
        ranked = sorted(self._scored, key=lambda t: (-t[0], t[1]))
        prov = self.provenance
        if prov.enabled:
            for rank, (score, _, record) in enumerate(ranked, start=1):
                if rank <= self.retrieve.k:
                    prov.emit(self, [record], [record],
                              score=round(score, 9), rank=rank)
                else:
                    prov.drop(self, record, DropReason.RETRIEVE_CUTOFF,
                              score=round(score, 9), rank=rank,
                              k=self.retrieve.k)
        return [record for _, _, record in ranked[: self.retrieve.k]]

    def naive_estimates(self, stream: StreamEstimate) -> OperatorCostEstimates:
        tokens = int(stream.avg_document_tokens)
        return OperatorCostEstimates(
            cardinality=min(stream.cardinality, float(self.retrieve.k)),
            time_per_record=self.model.latency_seconds(tokens, 0),
            cost_per_record=self.model.cost_usd(tokens, 0),
            quality=self.ESTIMATED_QUALITY,
        )
