"""Execution context: the shared services physical operators run against."""

from __future__ import annotations

from typing import Optional

from repro.llm.cache import CallCache
from repro.llm.clock import VirtualClock
from repro.llm.models import ModelRegistry, default_registry
from repro.llm.oracle import GroundTruthRegistry, global_oracle
from repro.llm.usage import BudgetMeter, QuotaExceededError, UsageLedger
from repro.obs.metrics import MetricsRegistry
from repro.obs.provenance import NULL_PROVENANCE
from repro.obs.trace import NULL_TRACER


class ExecutionContext:
    """Bundles the clock, ledger, oracle, and model registry for one run.

    Every execution (including optimizer sentinel runs) gets its own context
    so that sampling costs are accounted separately from the main run.
    """

    def __init__(
        self,
        max_workers: int = 1,
        clock: Optional[VirtualClock] = None,
        ledger: Optional[UsageLedger] = None,
        oracle: Optional[GroundTruthRegistry] = None,
        models: Optional[ModelRegistry] = None,
        cache: Optional[CallCache] = None,
        tracer=None,
        metrics: Optional[MetricsRegistry] = None,
        provenance=None,
        replay=None,
        budget: Optional[BudgetMeter] = None,
    ):
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self.clock = clock or VirtualClock(lanes=max_workers)
        self.ledger = ledger or UsageLedger()
        #: Shared spend cap (e.g. a tenant's quota).  Every call the
        #: run's ledger records is charged against it, and executors
        #: poll :meth:`checkpoint` between operators so a budget another
        #: session exhausted aborts this run cooperatively.
        self.budget = budget
        if budget is not None and self.ledger.budget is None:
            self.ledger.attach_budget(budget)
        self.oracle = oracle if oracle is not None else global_oracle()
        self.models = models or default_registry()
        self.cache = cache
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.provenance = (
            provenance if provenance is not None else NULL_PROVENANCE
        )
        #: Optional :class:`repro.llm.replay.ReplayLog`; when set, LLM
        #: clients capture fresh calls into it and serve replay hits from
        #: it (incremental execution).  Sentinel contexts never inherit it.
        self.replay = replay

    def checkpoint(self) -> None:
        """Cooperative quota-abort point (executors call this between
        operators).  Raises :class:`~repro.llm.usage.QuotaExceededError`
        when the shared budget has been strictly breached — typically by
        a concurrent session of the same tenant; this run's own breaching
        call raises directly from the ledger charge.  Free when no budget
        is attached.
        """
        budget = self.budget
        if budget is not None and budget.exceeded():
            raise QuotaExceededError(
                "quota exhausted (checkpoint): the shared budget was "
                "breached; aborting between operators",
                spent_cost_usd=budget.spent_cost_usd,
                spent_tokens=budget.spent_tokens,
            )

    def child(self) -> "ExecutionContext":
        """A fresh context sharing oracle/models but with its own meters.

        Used for sentinel (sample) runs whose cost is reported separately;
        the tracer and provenance recorder are NOT inherited — sentinel
        traffic would otherwise pollute the main run's trace and graph.
        """
        return ExecutionContext(
            max_workers=self.max_workers,
            oracle=self.oracle,
            models=self.models,
            cache=self.cache,
        )

    def __repr__(self) -> str:
        return (
            f"ExecutionContext(max_workers={self.max_workers}, "
            f"elapsed={self.clock.elapsed:.2f}s, "
            f"llm_calls={len(self.ledger)})"
        )
