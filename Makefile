# Convenience targets for the PalimpChat reproduction.

.PHONY: install test bench bench-exec bench-scale bench-incremental bench-server perf lint lint-concurrency serve server-smoke telemetry trace runs examples all clean

install:
	pip install -e . || python setup.py develop

test:
	python -m pytest tests/

bench:
	python -m pytest benchmarks/ --benchmark-only

perf:
	PYTHONPATH=src python scripts/perf_snapshot.py

# Executor benchmarks + regression gate: per-record vs threaded vs batched.
bench-exec:
	PYTHONPATH=src python scripts/perf_snapshot.py --quick \
		--output /tmp/perf_current.json --label bench-exec
	python scripts/check_perf_regression.py --current /tmp/perf_current.json

# Scale-out benchmarks + scaling gate: sequential vs sharded (2/4/8) vs
# async over the synthetic scale corpus; the gate checks the deterministic
# simulated speedup ratio of sharded(4) over sequential.
bench-scale:
	PYTHONPATH=src python scripts/perf_snapshot.py --quick \
		--output /tmp/perf_scale.json --label bench-scale
	python scripts/check_perf_regression.py --current /tmp/perf_scale.json

# Incremental-execution benchmarks + gate: a cold run vs an incremental
# re-run after a ~1% corpus delta; the gate checks the deterministic
# simulated cost and LLM-time speedups stay >= 5x.
bench-incremental:
	PYTHONPATH=src python scripts/perf_snapshot.py --quick \
		--output /tmp/perf_incremental.json --label bench-incremental
	python scripts/check_perf_regression.py \
		--current /tmp/perf_incremental.json

# Serving benchmarks + gate: sequential turns vs N tenants driving the
# server concurrently; the gate checks concurrent throughput doesn't
# regress below the sequential baseline ratio.
bench-server:
	PYTHONPATH=src python scripts/perf_snapshot.py --quick \
		--output /tmp/perf_server.json --label bench-server
	python scripts/check_perf_regression.py --current /tmp/perf_server.json

# The multi-tenant chat service (stdlib HTTP; see docs/server.md).
serve:
	PYTHONPATH=src python -m repro serve

# Boot the server on an ephemeral port and drive two tenants through
# chat -> execute -> results, asserting isolation + quota semantics.
server-smoke:
	PYTHONPATH=src python scripts/server_smoke.py

# Operational telemetry end-to-end: Prometheus exposition grammar,
# the JSON metrics snapshot, /healthz SLO verdicts, /version, and
# request-id correlation through the structured JSONL log.
telemetry:
	PYTHONPATH=src python scripts/validate_metrics.py

# Static analysis: demo pipelines, registered chat tools, example programs.
lint:
	PYTHONPATH=src python -m repro lint examples

# Concurrency & determinism lint (CC5xx only) over the engine source:
# guarded-by discipline, dead locks, worker writes, nondeterminism sources.
# --strict because the family's warnings (CC502/CC506/CC507) are real bugs.
lint-concurrency:
	PYTHONPATH=src python -m repro lint --family CC --strict src/repro

# Record a demo execution trace, print the critical-path analysis, and
# validate the exported Chrome trace_event JSON.
trace:
	PYTHONPATH=src python -m repro trace --workers 2 --batch-size 2 \
		--view critical-path --output /tmp/repro-trace.json
	python scripts/validate_trace.py /tmp/repro-trace.json

# Record two demo runs (different policies) into a scratch registry,
# validate their provenance graphs, and print the run diff.
runs:
	PYTHONPATH=src python -m repro runs record --policy quality \
		--runs-dir /tmp/repro-runs
	PYTHONPATH=src python -m repro runs record --policy cost \
		--runs-dir /tmp/repro-runs
	PYTHONPATH=src python scripts/validate_trace.py --kind provenance \
		/tmp/repro-runs/run-0001/provenance.json
	PYTHONPATH=src python -m repro runs diff --runs-dir /tmp/repro-runs

examples:
	python examples/quickstart.py
	python examples/scientific_discovery.py
	python examples/chat_scientific_discovery.py
	python examples/legal_discovery.py
	python examples/real_estate_search.py
	python examples/policy_tradeoffs.py
	python examples/dataset_catalog_join.py
	python examples/advanced_features.py

all: lint test bench

clean:
	rm -rf .pytest_cache src/repro.egg-info
	find . -name __pycache__ -type d -exec rm -rf {} +
