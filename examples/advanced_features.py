#!/usr/bin/env python
"""Power-user tour: EXPLAIN, caching, depends_on, and parallelism.

Walks through the operational features a production deployment leans on:
inspect the plan space before paying for it, cache semantic calls across
runs, restrict prompts to the relevant fields, and parallelize execution.

Run:  python examples/advanced_features.py
"""

import repro as pz
from repro.corpora import register_demo_datasets
from repro.corpora.papers import CLINICAL_FIELDS, PAPERS_PREDICATE


def build_pipeline():
    ClinicalData = pz.make_schema(
        "ClinicalData", "Datasets referenced by papers.", CLINICAL_FIELDS
    )
    return (
        pz.Dataset(source="sigmod-demo")
        .filter(PAPERS_PREDICATE)
        .convert(ClinicalData, cardinality=pz.Cardinality.ONE_TO_MANY)
    )


def main():
    register_demo_datasets()

    print("=== 1. EXPLAIN before executing ===")
    print(build_pipeline().explain(policy="quality"))

    print("\n=== 2. Cold vs warm execution with a call cache ===")
    cache = pz.CallCache()
    _, cold = pz.Execute(build_pipeline(), policy=pz.MaxQuality(),
                         cache=cache)
    records, warm = pz.Execute(build_pipeline(), policy=pz.MaxQuality(),
                               cache=cache)
    print(f"cold: ${cold.total_cost_usd:.4f} / "
          f"{cold.total_time_seconds:.0f}s")
    print(f"warm: ${warm.total_cost_usd:.4f} / "
          f"{warm.total_time_seconds:.1f}s "
          f"(cache hit rate {cache.stats.hit_rate:.0%}, "
          f"{len(records)} identical records)")

    print("\n=== 3. depends_on: judge only the relevant field ===")
    Note = pz.make_schema(
        "Note", "A tagged note.",
        {"tag": "The tag", "content": "The content"},
    )
    notes = pz.Dataset(
        [{"tag": "oncology", "content": "long unrelated prose " * 60},
         {"tag": "gardening", "content": "long unrelated prose " * 60}],
        schema=Note,
    )
    narrow = notes.filter("about oncology", depends_on=["tag"])
    kept, stats = pz.Execute(narrow, policy=pz.MaxQuality())
    filter_tokens = stats.plan_stats.operator_stats[1].input_tokens
    print(f"kept {len(kept)} of 2 notes (the oncology one); filter "
          f"consumed only {filter_tokens} prompt tokens thanks to "
          "depends_on")
    assert len(kept) == 1 and kept[0].tag == "oncology"

    print("\n=== 4. Parallel execution ===")
    for workers in (1, 4):
        _, run_stats = pz.Execute(
            build_pipeline(), policy=pz.MaxQuality(), max_workers=workers
        )
        print(f"{workers} worker(s): "
              f"{run_stats.total_time_seconds:.0f}s simulated "
              f"(${run_stats.total_cost_usd:.4f})")


if __name__ == "__main__":
    main()
