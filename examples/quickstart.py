#!/usr/bin/env python
"""Quickstart: a semantic pipeline over an in-memory dataset.

Build a tiny pipeline with the public API — filter documents with a
natural-language predicate, extract structured fields with a dynamically
created schema, and let the optimizer pick the physical plan.

Run:  python examples/quickstart.py
"""

import repro as pz


def main():
    notes = [
        "Reminder: the oncology seminar on colorectal cancer is Tuesday. "
        "Slides at https://seminars.example.edu/crc-2024.",
        "Grocery list: coffee beans, oat milk, rye bread.",
        "The colorectal cancer screening cohort report is finalized; "
        "read it at https://reports.example.org/screening-q2.",
        "Gym schedule changed to Thursday evenings.",
    ]

    # 1. Any iterable can be a dataset: every item becomes a record.
    dataset = pz.Dataset(notes, schema=pz.TextFile)

    # 2. Filter with plain English.
    dataset = dataset.filter("The notes are about colorectal cancer")

    # 3. Describe what to extract; a schema is a named set of fields.
    Link = pz.make_schema(
        "Link",
        "A link referenced by a note.",
        {"url": "The URL mentioned in the note"},
    )
    dataset = dataset.convert(Link)

    # 4. Execute under a policy; the optimizer picks models and strategies.
    records, stats = pz.Execute(dataset, policy=pz.MaxQuality())

    print(stats.summary())
    print()
    for record in records:
        print("extracted:", record.to_dict())

    assert len(records) == 2, "both cancer-related notes should survive"


if __name__ == "__main__":
    main()
