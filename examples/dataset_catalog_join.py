#!/usr/bin/env python
"""Joining extracted facts against a reference catalog.

A two-stage analysis that shows the relational side of the system working
over LLM-extracted values: extract the datasets each paper references (a
semantic convert), then **join** them with an institutional data catalog to
attach license and size metadata — a classic enrichment pattern that mixes
LLM operators with conventional relational ones (§4's vision).

Run:  python examples/dataset_catalog_join.py
"""

import repro as pz
from repro.corpora import register_demo_datasets
from repro.corpora.papers import CLINICAL_FIELDS, PAPERS_PREDICATE

# The institutional catalog: ordinary structured rows.
CATALOG_ROWS = [
    {"catalog_name": "TCGA-COAD", "license": "open (NIH GDC)",
     "size": "2.1 TB"},
    {"catalog_name": "CRC-Atlas", "license": "CC-BY 4.0", "size": "840 GB"},
    {"catalog_name": "COSMIC-CRC", "license": "academic", "size": "120 GB"},
    {"catalog_name": "PolypScreen", "license": "restricted", "size": "9 GB"},
]


def main():
    register_demo_datasets()

    # Stage 1: the usual scientific-discovery extraction.
    ClinicalData = pz.make_schema(
        "ClinicalData", "Datasets referenced by papers.", CLINICAL_FIELDS
    )
    extracted = (
        pz.Dataset(source="sigmod-demo")
        .filter(PAPERS_PREDICATE)
        .convert(ClinicalData, cardinality=pz.Cardinality.ONE_TO_MANY)
    )

    # Stage 2: join the extracted names against the catalog.
    catalog = pz.Dataset(CATALOG_ROWS)
    enriched = extracted.join(
        catalog,
        udf=lambda left, right: left.name == right.catalog_name,
    ).sort("name")

    records, stats = pz.Execute(enriched, policy=pz.MaxQuality())

    print(stats.summary())
    print()
    print("Extracted datasets found in the institutional catalog:")
    for record in records:
        print(
            f"  {record.name:<14} license={record.license:<16} "
            f"size={record.size:<8} url={record.url}"
        )
    not_catalogued = 6 - len(records)
    print(f"\n{len(records)} of 6 extracted datasets are catalogued "
          f"({not_catalogued} are not).")


if __name__ == "__main__":
    main()
