#!/usr/bin/env python
"""Real-estate search: semantic filters meet classic analytics.

A buyer searches free-text listings with a semantic criterion
("waterfront"), extracts structured attributes, and runs conventional
aggregations over the result — average asking price, per-city inventory —
plus a semantic top-k retrieval.

Run:  python examples/real_estate_search.py
"""

import repro as pz
from repro.corpora import register_demo_datasets
from repro.corpora.realestate import LISTING_FIELDS, REALESTATE_PREDICATE


def listing_schema(name="Listing"):
    return pz.make_schema(name, "A structured property listing.",
                          LISTING_FIELDS)


def main():
    register_demo_datasets()

    print("=== Average waterfront asking price ===")
    pipeline = (
        pz.Dataset(source="realestate-demo")
        .filter(REALESTATE_PREDICATE)
        .convert(listing_schema())
        .average("price")
    )
    records, stats = pz.Execute(pipeline, policy=pz.MaxQuality())
    print(f"  ${records[0].average_price:,.0f} "
          f"(pipeline cost ${stats.total_cost_usd:.4f}, "
          f"{stats.total_time_seconds:.0f}s simulated)")

    print("\n=== Inventory and price by city ===")
    by_city = (
        pz.Dataset(source="realestate-demo")
        .convert(listing_schema("Listing2"))
        .groupby(["city"], [("count", None), ("avg", "price")])
    )
    rows, _ = pz.Execute(by_city, policy=pz.MaxQuality())
    for row in rows:
        print(f"  {row.city:<12} listings={row.count:>2.0f} "
              f"avg=${row.average_price:,.0f}")

    print("\n=== Top-3 listings for 'waterfront home with a dock' ===")
    top = pz.Dataset(source="realestate-demo").retrieve(
        "waterfront home with a private dock", k=3
    )
    hits, _ = pz.Execute(top)
    for hit in hits:
        first_line = hit.text_contents.splitlines()[0]
        print(f"  {hit.filename}: {first_line}")


if __name__ == "__main__":
    main()
