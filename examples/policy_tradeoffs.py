#!/usr/bin/env python
"""Explore the optimizer's policy space on one logical plan.

Runs the scientific-discovery pipeline under every built-in policy —
including the constrained blends ("maximize quality under a cost budget") —
and prints the trade-off table the optimizer navigates (§2.1 of the paper).

Run:  python examples/policy_tradeoffs.py
"""

import repro as pz
from repro.corpora import register_demo_datasets
from repro.corpora.papers import CLINICAL_FIELDS, PAPERS_PREDICATE
from repro.evaluation.metrics import extraction_quality


def build_pipeline():
    ClinicalData = pz.make_schema(
        "ClinicalData", "Datasets referenced by papers.", CLINICAL_FIELDS
    )
    return (
        pz.Dataset(source="sigmod-demo")
        .filter(PAPERS_PREDICATE)
        .convert(ClinicalData, cardinality=pz.Cardinality.ONE_TO_MANY)
    )


def main():
    directories = register_demo_datasets()
    source = pz.Dataset(source="sigmod-demo").source

    policies = [
        pz.MaxQuality(),
        pz.MinCost(),
        pz.MinTime(),
        pz.MaxQualityAtFixedCost(0.05),
        pz.MaxQualityAtFixedTime(60.0),
        pz.MinCostAtFixedQuality(0.85),
        pz.WeightedBlend(cost_weight=1, time_weight=1, quality_weight=2),
    ]

    header = (
        f"{'policy':<24} {'recs':>4} {'F1':>6} {'cost($)':>9} "
        f"{'time(s)':>8}  plan"
    )
    print(header)
    print("-" * len(header))
    for policy in policies:
        records, stats = pz.Execute(build_pipeline(), policy=policy)
        card = extraction_quality(
            records, list(source), ["name", "description", "url"]
        )
        plan = stats.plan_stats.plan_describe.replace("MarshalAndScan -> ", "")
        print(
            f"{policy.describe():<24} {len(records):>4} {card.f1:>6.3f} "
            f"{stats.total_cost_usd:>9.4f} "
            f"{stats.total_time_seconds:>8.1f}  {plan}"
        )


if __name__ == "__main__":
    main()
