#!/usr/bin/env python
"""Legal discovery: responsive-document review + deal-term extraction.

A litigation team reviews a document production for materials responsive to
the "Project Harbor" merger investigation, extracts the deal terms from the
responsive documents, and compares what different optimization policies
cost — the quality gap between model tiers is clearly visible on this
harder corpus.

Run:  python examples/legal_discovery.py
"""

import repro as pz
from repro.corpora import register_demo_datasets
from repro.corpora.legal import CONTRACT_FIELDS, LEGAL_PREDICATE
from repro.evaluation.metrics import filter_quality


def build_pipeline():
    Contract = pz.make_schema(
        "Contract",
        "Deal terms extracted from responsive documents.",
        CONTRACT_FIELDS,
    )
    return (
        pz.Dataset(source="legal-demo")
        .filter(LEGAL_PREDICATE)
        .convert(Contract)
    )


def main():
    register_demo_datasets()

    print("=== Responsive review under MaxQuality ===")
    records, stats = pz.Execute(build_pipeline(), policy=pz.MaxQuality())
    print(stats.summary())
    print()
    for record in records:
        print(
            f"  {record.seller} -> {record.buyer} "
            f"({record.deal_value}, effective {record.effective_date})"
        )

    print("\n=== Review quality per policy (vs ground truth) ===")
    source = pz.Dataset(source="legal-demo").source
    for policy in (pz.MaxQuality(), pz.MinCost(), pz.MinTime()):
        review = pz.Dataset(source="legal-demo").filter(LEGAL_PREDICATE)
        kept, run_stats = pz.Execute(review, policy=policy)
        card = filter_quality(kept, list(source), LEGAL_PREDICATE)
        print(
            f"  {policy.describe():<12} responsive={len(kept):>2} "
            f"F1={card.f1:.3f} cost=${run_stats.total_cost_usd:.4f} "
            f"time={run_stats.total_time_seconds:.0f}s"
        )


if __name__ == "__main__":
    main()
