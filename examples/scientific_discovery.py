#!/usr/bin/env python
"""The paper's scientific-discovery scenario, as library code (Fig. 6).

Medical researchers survey a digital library for colorectal-cancer studies
and extract every publicly available dataset those studies reference.

This script is the programmatic twin of the chat-driven flow in
``chat_scientific_discovery.py``: same corpus, same logical plan, same
result — 11 papers in, 6 dataset records out.

Run:  python examples/scientific_discovery.py
"""

import repro as pz
from repro.corpora import register_demo_datasets
from repro.corpora.papers import CLINICAL_FIELDS, PAPERS_PREDICATE


def main():
    # Generate (or reuse) the demo corpora and register "sigmod-demo".
    register_demo_datasets()

    # --- Fig. 6, nearly line for line -----------------------------------
    # Set input dataset
    dataset = pz.Dataset(source="sigmod-demo", schema=pz.PDFFile)

    # Filter dataset
    dataset = dataset.filter(PAPERS_PREDICATE)

    # Create new schema
    ClinicalData = pz.make_schema(
        "ClinicalData",
        "A schema for extracting clinical data datasets from papers.",
        CLINICAL_FIELDS,
    )

    # Perform conversion (one paper may reference several datasets)
    dataset = dataset.convert(
        ClinicalData,
        desc=ClinicalData.schema_description(),
        cardinality=pz.Cardinality.ONE_TO_MANY,
    )

    # Execute workload
    policy = pz.MaxQuality()
    records, execution_stats = pz.Execute(dataset, policy=policy)
    # ---------------------------------------------------------------------

    print(execution_stats.summary())
    print()
    print(f"{len(records)} publicly available datasets extracted:")
    for record in records:
        print(f"  - {record.name}: {record.url}")
        print(f"      {record.description}")

    assert len(records) == 6, "the demo extracts 6 datasets from 11 papers"


if __name__ == "__main__":
    main()
