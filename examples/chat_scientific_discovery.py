#!/usr/bin/env python
"""The chat-driven scientific-discovery demo (Figs. 3-5).

Drives a PalimpChat session through the same conversation the paper
demonstrates: register a folder of PDFs, describe the analysis in plain
English, pick an optimization goal, run, inspect costs — then export the
whole session as a Jupyter notebook and print the generated program.

Run:  python examples/chat_scientific_discovery.py
"""

import tempfile
from pathlib import Path

from repro.chat import PalimpChatSession
from repro.corpora import register_demo_datasets


def say(session, message):
    print(f"\n>>> User: {message}")
    reply = session.chat(message)
    if reply.tool_sequence:
        print(f"    [tools invoked: {' -> '.join(reply.tool_sequence)}]")
    print(f"<<< PalimpChat: {reply.text}")
    return reply


def main():
    register_demo_datasets()
    session = PalimpChatSession(title="Scientific discovery demo")

    # Fig. 3: setting the input dataset.
    say(session, "Load the papers from the sigmod-demo dataset")

    # Fig. 4: one request decomposes into filter + schema + convert.
    say(
        session,
        "I am interested in papers that are about colorectal cancer, and I "
        "would like to extract the dataset name, description and url for "
        "any public dataset used by the study",
    )

    # Optimization goal + execution (Fig. 5).
    say(session, "Maximize quality and run the pipeline")
    say(session, "Show the extracted records")
    say(session, "How much did the LLM invocations cost?")

    # Artifacts: the Fig. 6 program and the downloadable notebook.
    print("\n=== Generated Palimpzest program (Fig. 6) ===")
    print(session.generated_code())

    notebook_path = Path(tempfile.gettempdir()) / "palimpchat-session.ipynb"
    session.export_notebook(notebook_path)
    print(f"Notebook exported to {notebook_path}")
    print(f"Agent reasoning cost: ${session.agent_cost_usd():.4f}")


if __name__ == "__main__":
    main()
